"""Dense real polynomials used as motion functions.

The paper (Section 2.4) models each coordinate of each moving point-object as
a polynomial of time with real coefficients and bounded degree ``k``
("k-motion").  This module provides the polynomial arithmetic the algorithms
rely on:

* evaluation (vectorised Horner scheme),
* ring arithmetic (needed to form squared-distance functions, cross products,
  and the difference polynomials whose roots are piece boundaries),
* real-root extraction on ``[0, inf)`` (Step 4 of Lemma 3.1 solves
  ``f(t) = g(t)`` per processor), and
* steady-state sign/comparison (Lemma 5.1: the behaviour of a bounded-degree
  polynomial as ``t -> inf`` is decided in O(1) time from its coefficients).

Coefficients are stored in *ascending* order: ``c[0] + c[1] t + ... + c[d] t^d``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Polynomial", "ZERO", "ONE", "T"]

#: Magnitude below which a floating-point coefficient is treated as zero.
COEFF_EPS = 1e-11

#: Tolerance used when deduplicating / validating real roots.
ROOT_EPS = 1e-8


def _trim(coeffs: np.ndarray) -> np.ndarray:
    """Drop trailing (highest-degree) coefficients that are numerically zero."""
    nz = np.flatnonzero(np.abs(coeffs) > COEFF_EPS)
    if nz.size == 0:
        return np.zeros(1)
    return coeffs[: nz[-1] + 1]


class Polynomial:
    """An immutable dense univariate polynomial with real coefficients.

    Parameters
    ----------
    coeffs:
        Coefficients in ascending order of degree.  Trailing zeros are
        trimmed, so ``Polynomial([1.0, 0.0])`` has degree 0.

    Notes
    -----
    Instances are hashable on their trimmed coefficient tuple and therefore
    usable as labels in piecewise functions and as dictionary keys in the
    grouping operations.  The hash is computed eagerly at construction (it
    keys the crossing caches on every combine) and the root candidates of
    the instance are memoised after the first computation.
    """

    __slots__ = ("_c", "_cl", "_hash", "_rc")

    def __init__(self, coeffs: Iterable[float]):
        # Normalise to a plain float list first: the polynomials here are
        # tiny (degree <= 2k), so scalar Python beats a chain of NumPy
        # calls — and float arithmetic is bit-identical either way.
        if isinstance(coeffs, np.ndarray):
            if coeffs.ndim != 1 or coeffs.size == 0:
                raise ValueError(
                    "coefficients must be a non-empty 1-D sequence"
                )
            lst = coeffs.tolist()
        else:
            lst = [float(x) for x in coeffs]
            if not lst:
                raise ValueError(
                    "coefficients must be a non-empty 1-D sequence"
                )
        for x in lst:
            if not math.isfinite(x):
                raise ValueError("coefficients must be finite")
        # Trim trailing near-zero coefficients (same rule as _trim).
        n = len(lst)
        while n > 1 and -COEFF_EPS <= lst[n - 1] <= COEFF_EPS:
            n -= 1
        if n == 1 and -COEFF_EPS <= lst[0] <= COEFF_EPS:
            lst = [0.0]
        elif n != len(lst):
            lst = lst[:n]
        self._cl = lst
        self._c = np.asarray(lst)
        self._c.setflags(write=False)
        self._hash = hash(tuple(round(x, 9) for x in lst))
        self._rc: list | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def constant(value: float) -> "Polynomial":
        """The constant polynomial ``value``."""
        return Polynomial([float(value)])

    @staticmethod
    def identity() -> "Polynomial":
        """The polynomial ``t``."""
        return Polynomial([0.0, 1.0])

    @staticmethod
    def from_roots(roots: Sequence[float], leading: float = 1.0) -> "Polynomial":
        """Monic-times-``leading`` polynomial with the given real roots."""
        p = Polynomial.constant(leading)
        for r in roots:
            p = p * Polynomial([-float(r), 1.0])
        return p

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def coeffs(self) -> np.ndarray:
        """Read-only ascending coefficient array (trailing zeros trimmed)."""
        return self._c

    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree 0."""
        return len(self._c) - 1

    @property
    def leading(self) -> float:
        """Leading (highest-degree) coefficient."""
        return float(self._c[-1])

    def is_zero(self) -> bool:
        """True when the polynomial is identically zero (within tolerance)."""
        return self.degree == 0 and abs(self._c[0]) <= COEFF_EPS

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, t):
        """Evaluate via Horner's scheme.  Accepts scalars or ndarrays."""
        if isinstance(t, (float, int)):
            # Scalar fast path: plain-float Horner, bit-identical to the
            # NumPy evaluation (both are IEEE double operations).
            cl = self._cl
            acc = cl[-1]
            for i in range(len(cl) - 2, -1, -1):
                acc = acc * t + cl[i]
            return float(acc)
        t = np.asarray(t, dtype=float)
        acc = np.full(t.shape, self._c[-1], dtype=float)
        for c in self._c[-2::-1]:
            acc = acc * t + c
        if acc.ndim == 0:
            return float(acc)
        return acc

    def derivative(self) -> "Polynomial":
        """First derivative."""
        if self.degree == 0:
            return ZERO
        d = self._c[1:] * np.arange(1, len(self._c))
        return Polynomial(d)

    # ------------------------------------------------------------------
    # Ring arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Polynomial":
        other = _coerce(other)
        n = max(len(self._c), len(other._c))
        a = np.zeros(n)
        a[: len(self._c)] = self._c
        a[: len(other._c)] += other._c
        return Polynomial(a)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial(-self._c)

    def __sub__(self, other) -> "Polynomial":
        other = _coerce(other)
        a, b = self._cl, other._cl
        if len(a) < len(b):
            out = [0.0 - y for y in b]
            for i, x in enumerate(a):
                out[i] = x - b[i]
        else:
            out = list(a)
            for i, y in enumerate(b):
                out[i] = out[i] - y
        return Polynomial(out)

    def __rsub__(self, other) -> "Polynomial":
        return _coerce(other) + (-self)

    def __mul__(self, other) -> "Polynomial":
        other = _coerce(other)
        return Polynomial(np.convolve(self._c, other._c))

    __rmul__ = __mul__

    def __pow__(self, k: int) -> "Polynomial":
        if not isinstance(k, int) or k < 0:
            raise ValueError("exponent must be a non-negative integer")
        out = ONE
        base = self
        while k:
            if k & 1:
                out = out * base
            base = base * base
            k >>= 1
        return out

    def compose(self, inner: "Polynomial") -> "Polynomial":
        """Return ``self(inner(t))`` (Horner composition)."""
        acc = Polynomial.constant(self._c[-1])
        for c in self._c[-2::-1]:
            acc = acc * inner + Polynomial.constant(c)
        return acc

    # ------------------------------------------------------------------
    # Comparisons / hashing
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        if len(self._c) != len(other._c):
            return False
        return bool(np.allclose(self._c, other._c, rtol=1e-9, atol=COEFF_EPS))

    def __hash__(self) -> int:
        # Rounded so that hash is consistent with tolerance-based __eq__
        # for exactly-representable inputs (the common case in tests).
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = []
        for i, c in enumerate(self._c):
            if abs(c) <= COEFF_EPS and self.degree > 0:
                continue
            if i == 0:
                terms.append(f"{c:g}")
            elif i == 1:
                terms.append(f"{c:g}*t")
            else:
                terms.append(f"{c:g}*t^{i}")
        return "Poly(" + " + ".join(terms) + ")"

    # ------------------------------------------------------------------
    # Steady-state behaviour (Lemma 5.1)
    # ------------------------------------------------------------------
    def sign_at_infinity(self) -> int:
        """Sign of ``self(t)`` for all sufficiently large ``t``.

        Lemma 5.1 of the paper: the steady-state minimum of two bounded-degree
        polynomials is decided in serial Theta(1) time.  The sign at +inf is
        the sign of the leading coefficient (0 for the zero polynomial).
        """
        if self.is_zero():
            return 0
        return 1 if self.leading > 0 else -1

    def steady_compare(self, other: "Polynomial") -> int:
        """Compare ``self`` and ``other`` as ``t -> inf``.

        Returns -1 if ``self(t) < other(t)`` eventually, +1 if eventually
        greater, 0 if the polynomials are identical.
        """
        return (self - _coerce(other)).sign_at_infinity()

    def horizon(self) -> float:
        """A time ``H >= 1`` beyond which ``self`` has no real roots.

        Uses the Cauchy root bound: every root ``r`` satisfies
        ``|r| <= 1 + max|c_i| / |c_d|``.
        """
        if self.is_zero() or self.degree == 0:
            return 1.0
        bound = 1.0 + float(np.max(np.abs(self._c[:-1]))) / abs(self.leading)
        return max(1.0, bound)

    # ------------------------------------------------------------------
    # Root finding
    # ------------------------------------------------------------------
    def real_roots(self, lo: float = 0.0, hi: float = math.inf) -> list[float]:
        """Real roots in ``[lo, hi]``, sorted ascending, deduplicated.

        Multiple roots are reported once.  This is the primitive used by
        Step 4 of Lemma 3.1 (solving ``f|I(t) = g|I(t)``), Theorem 4.2
        (collision times), and Theorem 4.5 (parallel-segment instants).

        The implementation uses the eigenvalues of the companion matrix
        (``numpy.roots``), keeps near-real eigenvalues, polishes each with a
        few Newton steps, and validates residuals.
        """
        if self.is_zero():
            # Identically zero: "roots" are the whole line; callers treat
            # an identically-zero difference separately (Lemma 3.1 step 4
            # tests for identical functions before solving).
            return []
        if self.degree == 0:
            return []
        if self.degree == 1:
            r = -self._c[0] / self._c[1]
            return [float(r)] if lo - ROOT_EPS <= r <= hi + ROOT_EPS else []
        return _filter_range(self._root_candidates(), lo, hi)

    def _root_candidates(self) -> list:
        """Sorted, polished real-root candidates before range filtering.

        Only meaningful for degree >= 2 (callers handle lower degrees with
        closed forms).  Memoised on the instance: the batched solver of
        :mod:`repro.kinetics.batch` pre-populates this memo so a later
        :meth:`real_roots` call is a cheap range filter.
        """
        if self._rc is not None:
            return self._rc
        if self.degree == 2:
            roots = _quadratic_candidates(self._c[0], self._c[1], self._c[2])
        else:
            comp = np.roots(self._c[::-1])
            roots = self._companion_candidates(comp)
        self._rc = roots
        return roots

    def _companion_candidates(self, comp: np.ndarray) -> list:
        """Near-real companion eigenvalues, sorted and Newton-polished."""
        scale = max(1.0, float(np.max(np.abs(comp))) if comp.size else 1.0)
        roots = sorted(
            float(z.real) for z in comp if abs(z.imag) <= 1e-7 * scale
        )
        return [self._polish(r) for r in roots]

    @staticmethod
    def batch_roots(polys: Sequence["Polynomial"], lo: float = 0.0,
                    hi: float = math.inf) -> list[list[float]]:
        """Real roots of many polynomials with one stacked eigenvalue solve.

        Equivalent to ``[p.real_roots(lo, hi) for p in polys]`` (identical
        output, including tolerance handling), but all companion matrices of
        equal size are solved by a single ``np.linalg.eigvals`` call.  See
        :mod:`repro.kinetics.batch`.
        """
        from .batch import batch_real_roots

        return batch_real_roots(polys, lo, hi)

    def _polish(self, r: float, iters: int = 3) -> float:
        """A few Newton iterations to refine an approximate real root."""
        d = self.derivative()
        x = r
        for _ in range(iters):
            fx = self(x)
            dx = d(x)
            if abs(dx) < 1e-14:
                break
            step = fx / dx
            if not math.isfinite(step):
                break
            x_new = x - step
            if not math.isfinite(x_new):
                break
            x = x_new
        # Accept the polished value only if it did not drift far away.
        if abs(x - r) <= 1e-3 * max(1.0, abs(r)):
            return x
        return r

    def sign_changes_on(self, lo: float, hi: float) -> list[float]:
        """Roots in ``(lo, hi)`` at which the polynomial changes sign."""
        out = []
        for r in self.real_roots(lo, hi):
            left = self(max(lo, r - _probe(r)))
            right = self(min(hi, r + _probe(r))) if math.isfinite(hi) else self(r + _probe(r))
            if left * right < 0:
                out.append(r)
        return out


def _probe(r: float) -> float:
    """Small probe offset proportional to the magnitude of ``r``."""
    return 1e-6 * max(1.0, abs(r))


def _quadratic_candidates(c, b, a) -> list:
    """Roots of ``a t^2 + b t + c`` via the numerically stable formula.

    Shared between the scalar path and the batched solver so both produce
    bit-identical candidate lists.
    """
    disc = b * b - 4 * a * c
    if disc < -ROOT_EPS * max(1.0, b * b + abs(4 * a * c)):
        return []
    disc = max(disc, 0.0)
    sq = math.sqrt(disc)
    if b >= 0:
        q = -(b + sq) / 2.0
    else:
        q = -(b - sq) / 2.0
    cands = set()
    if abs(a) > COEFF_EPS:
        cands.add(q / a)
    if abs(q) > COEFF_EPS:
        cands.add(c / q)
    if not cands:  # b == 0 and c == 0: double root at 0
        cands.add(0.0)
    return sorted(cands)


def _filter_range(roots, lo: float, hi: float) -> list:
    """Keep candidates in ``[lo, hi]`` (with tolerance), clamp, deduplicate."""
    out: list[float] = []
    for r in roots:
        if r < lo - ROOT_EPS or r > hi + ROOT_EPS:
            continue
        r = min(max(r, lo), hi if math.isfinite(hi) else r)
        if out and abs(r - out[-1]) <= ROOT_EPS * max(1.0, abs(r)):
            continue
        out.append(r)
    return out


def _coerce(value) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float, np.floating, np.integer)):
        return Polynomial.constant(float(value))
    raise TypeError(f"cannot coerce {type(value).__name__} to Polynomial")


#: The zero polynomial.
ZERO = Polynomial([0.0])
#: The unit polynomial.
ONE = Polynomial([1.0])
#: The identity polynomial ``t``.
T = Polynomial([0.0, 1.0])
