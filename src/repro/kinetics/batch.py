"""Batched real-root isolation: one stacked eigensolve for many polynomials.

Step 4 of Lemma 3.1 solves ``f|I(t) = g|I(t)`` independently for every gap
of a combine — classically one tiny companion-matrix eigenvalue problem per
pair.  Resolving those one `np.linalg.eigvals` call at a time makes the
wall-clock cost of an envelope combine all Python/numpy dispatch overhead
rather than arithmetic.  This module stacks all difference polynomials of
equal companion size into a single ``(m, d, d)`` tensor and solves them with
one `np.linalg.eigvals` call.

Bit-identical contract
----------------------
The batched solver must not perturb *any* observable output: the simulated
parallel-time charges in ``benchmarks/results`` are derived from piece
counts, which are derived from root values, so the batch kernel reproduces
the scalar :meth:`Polynomial.real_roots` pipeline exactly:

* companion matrices are built precisely as ``np.roots`` builds them
  (including the exact-zero trailing-coefficient stripping that turns roots
  at 0 into appended zeros);
* LAPACK processes each matrix of a stacked ``(m, d, d)`` input
  independently, so the eigenvalues are bit-identical to ``m`` separate
  calls (verified by ``tests/kinetics/test_batch.py``);
* the post-processing (near-real filter, sort, Newton polish, range filter)
  is the *same code* as the scalar path — the batch kernel only installs
  the memoised candidate lists, and `real_roots` does the rest.

Degree <= 2 polynomials never touch LAPACK: they use the shared closed-form
helpers from :mod:`repro.kinetics.polynomial`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .polynomial import Polynomial, _quadratic_candidates

__all__ = ["batch_real_roots", "warm_root_candidates"]


def _companion_tensor(stacked: np.ndarray) -> np.ndarray:
    """The ``(m, N-1, N-1)`` companion tensor of ``m`` descending
    coefficient rows with nonzero leading coefficient.

    Row ``i`` reproduces ``np.roots``'s companion matrix of ``stacked[i]``:
    ones on the subdiagonal, ``-p[1:] / p[0]`` in the first row.
    """
    m, n1 = stacked.shape
    n = n1 - 1
    A = np.zeros((m, n, n), dtype=stacked.dtype)
    if n > 1:
        A[:, np.arange(1, n), np.arange(0, n - 1)] = 1.0
    A[:, 0, :] = -stacked[:, 1:] / stacked[:, :1]
    return A


def warm_root_candidates(polys: Sequence[Polynomial]) -> None:
    """Populate the root-candidate memo of every degree >= 2 polynomial.

    Polynomials of degree >= 3 are grouped by companion size and solved
    with one stacked `np.linalg.eigvals` call per group; quadratics use the
    shared closed form.  After this call, ``p.real_roots(lo, hi)`` is a
    pure range filter for every ``p`` given here.
    """
    groups: dict[int, list[tuple[Polynomial, np.ndarray, int]]] = {}
    for p in polys:
        if p._rc is not None or p.degree < 2:
            continue
        if p.degree == 2:
            c = p.coeffs
            p._rc = _quadratic_candidates(c[0], c[1], c[2])
            continue
        desc = p.coeffs[::-1]
        # np.roots strips exact trailing zeros (roots at 0, re-appended
        # after the eigensolve); the leading coefficient is nonzero by
        # construction (trimmed at |c| > COEFF_EPS).
        nz = np.nonzero(desc)[0]
        stripped = desc[: int(nz[-1]) + 1]
        zeros_at_origin = len(desc) - int(nz[-1]) - 1
        groups.setdefault(len(stripped), []).append(
            (p, stripped, zeros_at_origin)
        )
    for n, members in groups.items():
        if n == 1:
            # Only the leading term survives: all roots are at the origin.
            for p, _, z in members:
                comp = np.zeros(z)
                p._rc = p._companion_candidates(comp)
            continue
        stacked = np.vstack([s for _, s, _ in members])
        eigs = np.linalg.eigvals(_companion_tensor(stacked))
        for (p, _, z), row in zip(members, eigs):
            comp = np.hstack((row, np.zeros(z, row.dtype))) if z else row
            p._rc = p._companion_candidates(comp)


def batch_real_roots(polys: Sequence[Polynomial], lo: float = 0.0,
                     hi: float = math.inf) -> list[list[float]]:
    """``[p.real_roots(lo, hi) for p in polys]`` with batched eigensolves.

    Output is identical to the per-polynomial loop (same values, same
    tolerance handling, same ordering); only the host-side execution is
    batched.
    """
    warm_root_candidates(polys)
    return [p.real_roots(lo, hi) for p in polys]
