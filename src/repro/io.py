"""Serialization of dynamic systems and piecewise results to plain JSON.

A practical necessity for a usable library: workloads (systems of motions)
and computed envelopes can be saved, shared, and reloaded — e.g. to archive
a benchmark's exact input, or to hand a collision report to another tool.

Only built-in JSON types are emitted; polynomials serialise as ascending
coefficient lists, so files remain human-readable and stable across
versions.
"""

from __future__ import annotations

import json
import math
from typing import IO

from .errors import ReproError
from .kinetics.motion import Motion, PointSystem
from .kinetics.piecewise import INF, Piece, PiecewiseFunction
from .kinetics.polynomial import Polynomial

__all__ = [
    "system_to_dict", "system_from_dict", "save_system", "load_system",
    "piecewise_to_dict", "piecewise_from_dict",
]

_FORMAT = "repro/point-system"
_VERSION = 1


def system_to_dict(system: PointSystem) -> dict:
    """A JSON-ready description of a point system."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "dimension": system.dimension,
        "k": system.k,
        "motions": [
            [list(map(float, coord.coeffs)) for coord in motion.coords]
            for motion in system.motions
        ],
    }


def system_from_dict(data: dict) -> PointSystem:
    """Inverse of :func:`system_to_dict`, with format validation."""
    if not isinstance(data, dict) or data.get("format") != _FORMAT:
        raise ReproError(f"not a {_FORMAT} document")
    if data.get("version") != _VERSION:
        raise ReproError(f"unsupported version {data.get('version')!r}")
    motions = [
        Motion(Polynomial(coeffs) for coeffs in rows)
        for rows in data["motions"]
    ]
    system = PointSystem(motions)
    if system.dimension != data.get("dimension"):
        raise ReproError("dimension field disagrees with the motions")
    return system


def save_system(system: PointSystem, fp: IO[str]) -> None:
    """Write a system to an open text file."""
    json.dump(system_to_dict(system), fp, indent=2)


def load_system(fp: IO[str]) -> PointSystem:
    """Read a system from an open text file."""
    return system_from_dict(json.load(fp))


def piecewise_to_dict(pw: PiecewiseFunction) -> dict:
    """Serialise a piecewise-polynomial result (envelope, D(t), ...).

    Piece functions must be :class:`Polynomial`; labels must be JSON-able
    (ints, strings, or lists/tuples thereof).
    """
    pieces = []
    for p in pw.pieces:
        if not isinstance(p.fn, Polynomial):
            raise ReproError(
                "only polynomial-valued piecewise functions serialise; "
                f"got a piece holding {type(p.fn).__name__}"
            )
        label = list(p.label) if isinstance(p.label, tuple) else p.label
        pieces.append({
            "lo": p.lo,
            "hi": None if math.isinf(p.hi) else p.hi,
            "coeffs": list(map(float, p.fn.coeffs)),
            "label": label,
        })
    return {"format": "repro/piecewise", "version": _VERSION,
            "pieces": pieces}


def piecewise_from_dict(data: dict) -> PiecewiseFunction:
    """Inverse of :func:`piecewise_to_dict`."""
    if not isinstance(data, dict) or data.get("format") != "repro/piecewise":
        raise ReproError("not a repro/piecewise document")
    pieces = []
    for rec in data["pieces"]:
        hi = INF if rec["hi"] is None else rec["hi"]
        label = rec["label"]
        if isinstance(label, list):
            label = tuple(label)
        pieces.append(Piece(rec["lo"], hi, Polynomial(rec["coeffs"]), label))
    return PiecewiseFunction(pieces)
