"""The service's query model: families, requests, runs, and answers.

A request names a *curve family* by its generator coordinates (the same
``(kind, seed, n)`` coordinates the verification layer replays failures
from — :mod:`repro.verify.generators`), a *dynamic algorithm*, a machine
*backend*, and query parameters.  Parameters split in two:

* **run parameters** identify the simulated run that must happen (the
  envelope ``op``, the hull-membership ``query`` index) — requests that
  agree on ``(algorithm, family, backend, run parameters)`` share one
  simulated run and therefore one *run key*;
* **query parameters** are evaluated server-side from the finished run's
  encoded result (an envelope value at ``t``, membership at ``t``,
  extremeness of an index) — they never require another simulated run.

The encoded result form is plain JSON (polynomial coefficients, interval
endpoints, hull indices), so it crosses process boundaries, caches
byte-stably, and evaluates deterministically: the service's answer for a
query is a pure function of ``(run key, query parameters)``, which is what
the bit-identity tests in ``tests/service/`` pin against per-query driver
runs.
"""

from __future__ import annotations

import functools
import json
import math
import zlib
from dataclasses import dataclass
from typing import Any

from ..core.envelope import envelope, envelope_serial
from ..core.family import PolynomialFamily
from ..core.hull_membership import hull_membership_intervals
from ..core.steady import steady_hull
from ..machines.machine import hypercube_machine, mesh_machine, pram_machine
from ..verify.compare import sim_snapshot
from ..verify.generators import (
    CURVE_KINDS,
    SYSTEM_KINDS,
    SYSTEM_SIZE_FLOORS,
    make_curves,
    make_system,
)

__all__ = [
    "ALGORITHMS", "BACKENDS", "FamilySpec", "MutationRequest", "MUTATION_OPS",
    "QueryRequest", "QueryResponse", "ServiceError", "mutation", "request",
    "run_key", "shard_of", "run_driver", "answer_query", "direct_response",
    "dynamic_run_key", "response_payload", "validate_mutation",
    "validate_request",
]

#: Piece-boundary tolerance for evaluating encoded envelopes, matching
#: :data:`repro.kinetics.piecewise.T_EPS` so service answers agree with
#: ``PiecewiseFunction.piece_at`` on the same run.
_T_EPS = 1e-9

#: Machine factories per backend name; ``serial`` runs the driver's
#: ``machine=None`` oracle path.
BACKENDS = ("serial", "mesh", "hypercube", "pram")

_MACHINE_FACTORIES = {
    "mesh": mesh_machine,
    "hypercube": hypercube_machine,
    "pram": pram_machine,
}

#: algorithm -> (family domain, run-parameter names, default query).
ALGORITHMS = {
    "envelope": ("curves", ("op",), "full"),
    "hull_membership": ("system", ("query",), "intervals"),
    "steady_hull": ("system", (), "hull"),
}


class ServiceError(RuntimeError):
    """A structured service failure delivered instead of a response.

    ``code`` is machine-readable (``worker_failed``, ``shutdown``, ...);
    ``detail`` carries the human-readable cause and ``context`` any
    batch/shard coordinates — clients must never need to parse the
    message string.
    """

    def __init__(self, code: str, detail: str,
                 context: dict | None = None) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.context = dict(context or {})

    def to_dict(self) -> dict:
        return {"code": self.code, "detail": self.detail,
                "context": dict(self.context)}


@dataclass(frozen=True)
class FamilySpec:
    """Generator coordinates of one curve/point family (pure replay key)."""

    domain: str    # "curves" | "system"
    kind: str
    seed: int
    n: int
    degree: int = 2   # s for curve families, k for point systems

    def __post_init__(self) -> None:
        if self.domain not in ("curves", "system"):
            raise ValueError(f"unknown family domain {self.domain!r}")
        kinds = CURVE_KINDS if self.domain == "curves" else SYSTEM_KINDS
        if self.kind not in kinds:
            raise KeyError(f"unknown {self.domain} kind {self.kind!r}; "
                           f"have {sorted(kinds)}")
        if self.n < 1:
            raise ValueError(f"family size must be >= 1, got {self.n}")

    def key(self) -> tuple:
        return (self.domain, self.kind, self.seed, self.n, self.degree)

    def size(self) -> int:
        """The number of objects :meth:`build` actually returns."""
        if self.domain == "system":
            return max(self.n, SYSTEM_SIZE_FLOORS[self.kind])
        return self.n

    def build(self) -> Any:
        """Materialise the family (deterministic in the coordinates)."""
        if self.domain == "curves":
            return make_curves(self.kind, self.seed, n=self.n, s=self.degree)
        return make_system(self.kind, self.seed, n=self.n, k=self.degree)

    def to_dict(self) -> dict:
        return {"domain": self.domain, "kind": self.kind, "seed": self.seed,
                "n": self.n, "degree": self.degree}

    @staticmethod
    def from_dict(doc: dict) -> "FamilySpec":
        return FamilySpec(doc["domain"], doc["kind"], int(doc["seed"]),
                          int(doc["n"]), int(doc.get("degree", 2)))


@dataclass(frozen=True)
class QueryRequest:
    """One client query: ``(algorithm, family, backend, params)``.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so requests
    are hashable (dedupe keys) and canonically ordered.  Use
    :func:`request` to build one from keyword arguments.
    """

    algorithm: str
    family: FamilySpec
    backend: str = "mesh"
    params: tuple = ()

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise KeyError(f"unknown algorithm {self.algorithm!r}; "
                           f"have {sorted(ALGORITHMS)}")
        if self.backend not in BACKENDS:
            raise KeyError(f"unknown backend {self.backend!r}; "
                           f"have {sorted(BACKENDS)}")
        domain, _, _ = ALGORITHMS[self.algorithm]
        if self.family.domain != domain:
            raise ValueError(
                f"{self.algorithm} queries run on {domain!r} families, "
                f"got {self.family.domain!r}")

    # ------------------------------------------------------------------
    def run_params(self) -> dict:
        """The parameters that select the simulated run."""
        _, run_names, _ = ALGORITHMS[self.algorithm]
        params = dict(self.params)
        out = {}
        if self.algorithm == "envelope":
            out["op"] = params.get("op", "min")
        elif self.algorithm == "hull_membership":
            out["query"] = int(params.get("query", 0))
        return {k: out[k] for k in run_names}

    def query(self) -> dict:
        """The query evaluated from the finished run's encoded result."""
        _, run_names, default_q = ALGORITHMS[self.algorithm]
        out = {k: v for k, v in self.params if k not in run_names}
        out.setdefault("q", default_q)
        return out

    def key(self) -> tuple:
        """Full request identity (dedupe key within a batch)."""
        return (self.algorithm, self.family.key(), self.backend, self.params)

    def to_dict(self) -> dict:
        return {"algorithm": self.algorithm, "family": self.family.to_dict(),
                "backend": self.backend, "params": dict(self.params)}


def request(algorithm: str, *, kind: str, seed: int, n: int,
            degree: int | None = None, backend: str = "mesh",
            **params) -> QueryRequest:
    """Build a :class:`QueryRequest` from keyword coordinates."""
    domain, _, _ = ALGORITHMS.get(algorithm, (None, None, None))
    if domain is None:
        raise KeyError(f"unknown algorithm {algorithm!r}; "
                       f"have {sorted(ALGORITHMS)}")
    if degree is None:
        degree = 2 if domain == "curves" else 1
    fam = FamilySpec(domain, kind, seed, n, degree)
    items = tuple(sorted(params.items()))
    return QueryRequest(algorithm, fam, backend, items)


# ----------------------------------------------------------------------
# Mutations: write traffic against dynamic families
# ----------------------------------------------------------------------
#: mutation action -> required parameter names (beyond optional ones).
MUTATION_OPS = {
    "create": (),
    "insert": ("coeffs",),
    "delete": ("curve_id",),
    "retarget": ("curve_id", "coeffs"),
    "drop": (),
}

#: Optional parameters each mutation action understands.
_MUTATION_OPTIONAL = {
    "create": ("op", "degree", "kind", "seed", "n"),
    "insert": (),
    "delete": (),
    "retarget": (),
    "drop": (),
}


@dataclass(frozen=True)
class MutationRequest:
    """One write against a *dynamic* family: ``(name, action, params)``.

    Dynamic families live in the service's
    :class:`~repro.service.dynamic.DynamicFamilyStore`, maintained by
    the incremental engine (:mod:`repro.incremental`) — a mutation
    updates the envelope in place instead of invalidating the world and
    recomputing.  ``params`` is a sorted ``(name, value)`` tuple (same
    canonical form as :class:`QueryRequest.params`); use
    :func:`mutation` to build one from keyword arguments.
    """

    name: str
    action: str
    params: tuple = ()

    def __post_init__(self) -> None:
        if self.action not in MUTATION_OPS:
            raise KeyError(f"unknown mutation action {self.action!r}; "
                           f"have {sorted(MUTATION_OPS)}")
        if not self.name or not isinstance(self.name, str):
            raise ValueError("dynamic family name must be a non-empty string")

    def to_dict(self) -> dict:
        return {"name": self.name, "action": self.action,
                "params": dict(self.params)}


def mutation(name: str, action: str, **params) -> MutationRequest:
    """Build a :class:`MutationRequest` from keyword parameters."""
    if "coeffs" in params:
        params["coeffs"] = tuple(float(c) for c in params["coeffs"])
    return MutationRequest(name, action, tuple(sorted(params.items())))


def validate_mutation(m: MutationRequest) -> list[str]:
    """Problems that would make ``m`` unapplyable (empty = valid).

    Mirrors :func:`validate_request`: shape errors surface at submit
    time as structured ``bad_request`` failures, never inside the
    engine.  Liveness errors (unknown family, unknown curve id) are the
    store's to raise — they depend on state, not shape.
    """
    problems = []
    params = dict(m.params)
    required = MUTATION_OPS[m.action]
    known = set(required) | set(_MUTATION_OPTIONAL[m.action])
    for need in required:
        if need not in params:
            problems.append(f"mutation {m.action!r} requires parameter "
                            f"{need!r}")
    for name in params:
        if name not in known:
            problems.append(f"unknown parameter {name!r} for mutation "
                            f"{m.action!r} (known: {sorted(known)})")
    if "coeffs" in params:
        coeffs = params["coeffs"]
        if not isinstance(coeffs, tuple) or not coeffs:
            problems.append("coeffs must be a non-empty tuple of floats")
        elif not all(isinstance(c, float) and math.isfinite(c)
                     for c in coeffs):
            problems.append("coeffs must all be finite floats")
    if "curve_id" in params and not isinstance(params["curve_id"], int):
        problems.append("curve_id must be an integer")
    if m.action == "create":
        if params.get("op", "min") not in ("min", "max"):
            problems.append(f"envelope op must be 'min' or 'max', "
                            f"got {params.get('op')!r}")
        kind = params.get("kind")
        if kind is not None and kind not in CURVE_KINDS:
            problems.append(f"unknown curve kind {kind!r}; "
                            f"have {sorted(CURVE_KINDS)}")
        if int(params.get("n", 0)) < 0:
            problems.append("seed family size n must be >= 0")
        if int(params.get("degree", 2)) < 0:
            problems.append("degree bound must be >= 0")
    return problems


def dynamic_run_key(name: str, op: str) -> tuple:
    """The run key a dynamic family's envelope entry caches under.

    Same shape as :func:`run_key` — ``("envelope", family-coordinates,
    backend, machine_size, executor, run-params)`` — with the
    ``"dynamic"`` domain marking that the entry came from the
    incremental engine, not a simulated run.  The key deliberately
    excludes the family *version*: a mutation evicts the key (targeted
    invalidation) rather than abandoning it to LRU aging.
    """
    return ("envelope", ("dynamic", name), "incremental", 0, None,
            (("op", op),))


#: Query names each algorithm answers, with their required parameters.
_QUERY_SHAPES = {
    "envelope": {"full": (), "value_at": ("t",)},
    "hull_membership": {"intervals": (), "member_at": ("t",)},
    "steady_hull": {"hull": (), "is_extreme": ("i",)},
}


def validate_request(req: QueryRequest) -> list[str]:
    """Problems that would make ``req`` unanswerable (empty = valid).

    Construction already validates algorithm/backend/domain; this checks
    the *parameters*: run parameters in range, a known query name, and
    the query's required arguments present — so a bad request fails at
    submit time with a structured error, never inside a worker.

    Validity is a pure function of the (frozen, hashable) request, so
    repeat arrivals of popular requests hit a bounded memo instead of
    re-deriving the parameter shape on every submit.
    """
    return list(_validate_cached(req))


@functools.lru_cache(maxsize=4096)
def _validate_cached(req: QueryRequest) -> tuple:
    problems = []
    params = dict(req.params)
    rp = req.run_params()
    if req.algorithm == "envelope" and rp["op"] not in ("min", "max"):
        problems.append(f"envelope op must be 'min' or 'max', "
                        f"got {rp['op']!r}")
    if req.algorithm == "hull_membership":
        q = rp["query"]
        if not 0 <= q < req.family.size():
            problems.append(f"hull_membership query index {q} out of range "
                            f"for a family of {req.family.size()} points")
    shapes = _QUERY_SHAPES[req.algorithm]
    query = req.query()
    qname = query["q"]
    if qname not in shapes:
        problems.append(f"unknown {req.algorithm} query {qname!r}; "
                        f"have {sorted(shapes)}")
    else:
        for needed in shapes[qname]:
            if needed not in query:
                problems.append(f"query {qname!r} requires parameter "
                                f"{needed!r}")
    run_names = ALGORITHMS[req.algorithm][1]
    known = set(run_names) | {"q"} | {
        p for shape in shapes.values() for p in shape
    }
    for name in params:
        if name not in known:
            problems.append(f"unknown parameter {name!r} for "
                            f"{req.algorithm} (known: {sorted(known)})")
    return tuple(problems)


@functools.lru_cache(maxsize=4096)
def run_key(req: QueryRequest, machine_size: int,
            executor: str | None) -> tuple:
    """The simulated-run identity a request resolves to.

    Requests sharing a run key are batched into one simulated run; the
    result cache is keyed on this.  A pure function of its (hashable)
    arguments, memoized bounded: the planner computes it once per
    arrival, and repeat-heavy traffic repeats the same requests.
    """
    rp = tuple(sorted(req.run_params().items()))
    return (req.algorithm, req.family.key(), req.backend,
            machine_size, executor, rp)


@functools.lru_cache(maxsize=4096)
def shard_of(key: tuple, n_shards: int) -> int:
    """Deterministic family->shard assignment, stable across processes.

    Uses CRC-32 of the canonical JSON of the *family* coordinates (never
    python's salted ``hash``), so the assignment is a pure function of the
    key for every interpreter invocation — the same discipline as the
    campaign engine's seed-carrying work items.
    """
    family = key[1] if len(key) > 1 and isinstance(key[1], tuple) else key
    blob = json.dumps(family, sort_keys=True, default=str).encode()
    return zlib.crc32(blob) % max(1, n_shards)


# ----------------------------------------------------------------------
# Driver execution and result encoding (runs inside workers)
# ----------------------------------------------------------------------
def _encode_envelope(env: Any) -> dict:
    pieces = []
    for p in env.pieces:
        coeffs = [float(c) for c in p.fn._cl]
        pieces.append([float(p.lo), float(p.hi), coeffs, repr(p.label)])
    return {"pieces": pieces}


def _encode_intervals(intervals: Any) -> dict:
    return {"intervals": [[float(lo), float(hi)] for lo, hi in intervals]}


def _encode_hull(hull: Any) -> dict:
    return {"hull": [int(i) for i in hull]}


def run_driver(algorithm: str, family: FamilySpec, run_params: dict,
               backend: str, machine_size: int) -> dict:
    """One simulated run; returns the encoded result plus sim charges.

    The returned dict is plain JSON: it crosses the worker process
    boundary, lands in the result cache, and is what every query in the
    batch is answered from.  ``sim_time``/``sim`` are the run's simulated
    charges (zero/None on the serial backend) — deterministic, so they are
    part of the cacheable payload.
    """
    machine = None
    if backend != "serial":
        machine = _MACHINE_FACTORIES[backend](machine_size)
    objects = family.build()
    if algorithm == "envelope":
        fam = PolynomialFamily(family.degree)
        op = run_params["op"]
        if machine is None:
            raw = envelope_serial(objects, fam, op=op)
        else:
            raw = envelope(machine, objects, fam, op=op)
        result = _encode_envelope(raw)
    elif algorithm == "hull_membership":
        raw = hull_membership_intervals(machine, objects,
                                        query=run_params["query"])
        result = _encode_intervals(raw)
    elif algorithm == "steady_hull":
        raw = steady_hull(machine, objects)
        result = _encode_hull(raw)
    else:  # pragma: no cover - guarded by QueryRequest validation
        raise KeyError(f"unknown algorithm {algorithm!r}")
    sim = None if machine is None else sim_snapshot(machine.metrics)
    sim_time = 0.0 if machine is None else float(machine.metrics.time)
    return {"result": result, "sim": sim, "sim_time": sim_time}


# ----------------------------------------------------------------------
# Query evaluation from encoded results (runs on the event loop; pure
# arithmetic over the JSON form — never driver code)
# ----------------------------------------------------------------------
def _horner(coeffs: list, t: float) -> float:
    acc = 0.0
    for c in reversed(coeffs):
        acc = acc * t + c
    return acc


def _envelope_answer(result: dict, query: dict) -> Any:
    q = query["q"]
    if q == "full":
        return result["pieces"]
    if q == "value_at":
        t = float(query["t"])
        for lo, hi, coeffs, label in result["pieces"]:
            if lo - _T_EPS <= t <= hi + _T_EPS:
                return {"t": t, "value": _horner(coeffs, t), "label": label}
        return {"t": t, "value": None, "label": None}
    raise KeyError(f"unknown envelope query {q!r}")


def _membership_answer(result: dict, query: dict) -> Any:
    q = query["q"]
    if q == "intervals":
        return result["intervals"]
    if q == "member_at":
        t = float(query["t"])
        return any(lo - _T_EPS <= t <= hi + _T_EPS
                   for lo, hi in result["intervals"])
    raise KeyError(f"unknown hull_membership query {q!r}")


def _hull_answer(result: dict, query: dict) -> Any:
    q = query["q"]
    if q == "hull":
        return result["hull"]
    if q == "is_extreme":
        return int(query["i"]) in result["hull"]
    raise KeyError(f"unknown steady_hull query {q!r}")


_ANSWERERS = {
    "envelope": _envelope_answer,
    "hull_membership": _membership_answer,
    "steady_hull": _hull_answer,
}


def answer_query(algorithm: str, result: dict, query: dict) -> Any:
    """Evaluate one query against an encoded run result (pure function)."""
    return _ANSWERERS[algorithm](result, query)


def response_payload(req: QueryRequest, entry: dict, *, machine_size: int,
                     executor: str | None) -> dict:
    """The deterministic response body for ``req`` given a run entry.

    Every field is a pure function of the run key and the query, so a
    cache-hit payload is byte-equal to the cold payload for the same
    request (``tests/service/test_equivalence.py`` pins this as exact
    ``json.dumps`` equality).
    """
    return {
        "schema": "repro.service/1",
        "algorithm": req.algorithm,
        "family": req.family.to_dict(),
        "backend": req.backend,
        "machine_size": machine_size,
        "executor": executor,
        "run_params": req.run_params(),
        "query": req.query(),
        "answer": answer_query(req.algorithm, entry["result"], req.query()),
        "sim_time": entry["sim_time"],
    }


@dataclass
class QueryResponse:
    """A served query: deterministic payload + host-side metadata.

    ``payload`` is the bit-identity surface (byte-equal across cache
    hits, shard counts, arrival orders and batch shapes); ``meta`` is
    host-side serving detail (latency, shard, batch size, cache flag) and
    ``provenance`` the ``repro.provenance/1`` manifest of the serving
    process.
    """

    payload: dict
    meta: dict
    provenance: dict

    @property
    def answer(self) -> Any:
        return self.payload["answer"]

    @property
    def cache_hit(self) -> bool:
        return bool(self.meta.get("cache_hit"))

    def payload_bytes(self) -> bytes:
        """Canonical byte form of the deterministic payload."""
        return json.dumps(self.payload, sort_keys=True).encode()


def direct_response(req: QueryRequest, *, machine_size: int = 64,
                    executor: str | None = None) -> dict:
    """The per-query driver run the service must be bit-identical to.

    Runs the driver fresh (no batching, no cache, no pools) and builds the
    same deterministic payload the service returns — the oracle side of
    every equivalence test.  ``executor`` switches the data-movement
    executor for the run and restores the previous one.
    """
    from ..ops.plans import set_compiled_plans

    prev = set_compiled_plans(executor) if executor is not None else None
    try:
        entry = run_driver(req.algorithm, req.family, req.run_params(),
                           req.backend, machine_size)
    finally:
        if prev is not None:
            set_compiled_plans(prev)
    return response_payload(req, entry, machine_size=machine_size,
                            executor=executor)
