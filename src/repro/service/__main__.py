"""``python -m repro.service`` — a self-contained serving smoke run.

Replays a small synthetic query stream (zipf-skewed repeats over a few
families, all three algorithms) through a live :class:`QueryService` and
prints the serving counters.  The heavyweight load harness with latency
percentiles and the committed artifact lives in
``benchmarks/bench_service.py``; this entry point exists to demo the
service and smoke-test an installation in seconds.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from .model import request
from .server import QueryService


def build_stream(n_queries: int, n_families: int, seed: int,
                 skew: float = 1.1) -> list:
    """A zipf-skewed request stream over a deterministic family universe."""
    rng = np.random.default_rng(seed)
    universe = []
    for i in range(n_families):
        alg = ("envelope", "hull_membership", "steady_hull")[i % 3]
        if alg == "envelope":
            universe.append(request(
                "envelope", kind=("random", "tangent", "tie")[i % 3],
                seed=100 + i, n=4 + i % 5,
                op="min" if i % 2 == 0 else "max"))
        elif alg == "hull_membership":
            universe.append(request(
                "hull_membership", kind=("random", "symmetric")[i % 2],
                seed=200 + i, n=5 + i % 3))
        else:
            universe.append(request(
                "steady_hull", kind=("random", "converging")[i % 2],
                seed=300 + i, n=5 + i % 4))
    weights = (np.arange(1, n_families + 1, dtype=float)) ** (-skew)
    weights /= weights.sum()
    picks = rng.choice(n_families, size=n_queries, p=weights)
    return [universe[int(i)] for i in picks]


async def _serve(stream, args) -> dict:
    async with QueryService(shards=args.shards, workers=args.workers,
                            cache_capacity=args.cache,
                            max_batch=args.max_batch) as svc:
        for start in range(0, len(stream), args.wave):
            wave = stream[start:start + args.wave]
            await svc.submit_many(wave)
        return svc.stats_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="smoke-replay a synthetic query stream")
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--families", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--cache", type=int, default=128,
                        help="total cache capacity (0 disables)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--wave", type=int, default=64,
                        help="concurrent submissions per wave")
    args = parser.parse_args(argv)
    stream = build_stream(args.queries, args.families, args.seed)
    stats = asyncio.run(_serve(stream, args))
    json.dump(stats, sys.stdout, indent=2)
    sys.stdout.write("\n")
    ok = stats["service"]["responses"] == args.queries
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
