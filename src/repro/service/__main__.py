"""``python -m repro.service`` — smoke replay + live stats surface.

Two subcommands share one synthetic workload (zipf-skewed repeats over a
few families, all three algorithms):

* ``smoke`` (the default — bare flags still work) replays the stream
  through a live :class:`QueryService` and prints the serving counters;
  ``--stats`` embeds the full ``repro.obs/1`` snapshot, and ``--fault``
  arms an injected worker fault so the degradation path (structured
  error + flight-recorder postmortem dump) can be demoed end to end;
* ``stats`` replays the stream and prints the ``repro.obs/1`` snapshot
  itself — as JSON, or as the Prometheus-style text exposition with
  ``--prom`` (see :mod:`repro.obs.prom`).

The heavyweight load harness with the committed artifact lives in
``benchmarks/bench_service.py``; this entry point exists to demo the
service and smoke-test an installation in seconds.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from ..obs import render_prometheus
from .model import QueryRequest, request
from .server import QueryService


def build_stream(n_queries: int, n_families: int, seed: int,
                 skew: float = 1.1) -> list[QueryRequest]:
    """A zipf-skewed request stream over a deterministic family universe."""
    rng = np.random.default_rng(seed)
    universe = []
    for i in range(n_families):
        alg = ("envelope", "hull_membership", "steady_hull")[i % 3]
        if alg == "envelope":
            universe.append(request(
                "envelope", kind=("random", "tangent", "tie")[i % 3],
                seed=100 + i, n=4 + i % 5,
                op="min" if i % 2 == 0 else "max"))
        elif alg == "hull_membership":
            universe.append(request(
                "hull_membership", kind=("random", "symmetric")[i % 2],
                seed=200 + i, n=5 + i % 3))
        else:
            universe.append(request(
                "steady_hull", kind=("random", "converging")[i % 2],
                seed=300 + i, n=5 + i % 4))
    weights = (np.arange(1, n_families + 1, dtype=float)) ** (-skew)
    weights /= weights.sum()
    picks = rng.choice(n_families, size=n_queries, p=weights)
    return [universe[int(i)] for i in picks]


async def _serve(stream: list[QueryRequest], args: argparse.Namespace,
                 *, fault: str | None = None,
                 postmortem_dir: str | None = None,
                 ) -> tuple[QueryService, int]:
    """Replay ``stream``; returns the (stopped) service and error count."""
    svc = QueryService(shards=args.shards, workers=args.workers,
                      cache_capacity=args.cache, max_batch=args.max_batch,
                      # No retry budget under injected faults: concurrent
                      # units would otherwise absorb the one-shot faults
                      # across their retries and never degrade.
                      retries=0 if fault else 1,
                      postmortem_dir=postmortem_dir)
    errors = 0
    async with svc:
        if fault:
            svc.inject_fault(fault)
        for start in range(0, len(stream), args.wave):
            wave = stream[start:start + args.wave]
            results = await asyncio.gather(
                *(svc.submit(r) for r in wave), return_exceptions=True)
            errors += sum(isinstance(r, BaseException) for r in results)
    return svc, errors


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--families", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--cache", type=int, default=128,
                        help="total cache capacity (0 disables)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--wave", type=int, default=64,
                        help="concurrent submissions per wave")


def _smoke(args: argparse.Namespace) -> int:
    postmortem_dir = args.postmortem_dir
    if args.fault and postmortem_dir is None:
        postmortem_dir = "."
    stream = build_stream(args.queries, args.families, args.seed)
    svc, errors = asyncio.run(
        _serve(stream, args, fault=args.fault,
               postmortem_dir=postmortem_dir))
    out = svc.stats_dict()
    if args.fault:
        out["errors"] = errors
        out["postmortem"] = (str(svc.last_postmortem)
                             if svc.last_postmortem else None)
    if args.stats:
        out["stats"] = svc.stats()
    json.dump(out, sys.stdout, indent=2)
    sys.stdout.write("\n")
    responses = out["service"]["responses"]
    ok = responses + errors == args.queries
    if args.fault:
        ok = ok and errors > 0 and out["postmortem"] is not None
    return 0 if ok else 1


def _stats(args: argparse.Namespace) -> int:
    stream = build_stream(args.queries, args.families, args.seed)
    svc, errors = asyncio.run(_serve(stream, args))
    snapshot = svc.stats()
    if args.prom:
        sys.stdout.write(render_prometheus(snapshot))
    else:
        json.dump(snapshot, sys.stdout, indent=2)
        sys.stdout.write("\n")
    return 0 if not errors else 1


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # Backward compatibility: bare flags mean the smoke replay.
    if not argv or argv[0].startswith("-"):
        argv = ["smoke", *argv]
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="smoke-replay a synthetic query stream and inspect "
                    "the serving telemetry")
    sub = parser.add_subparsers(dest="command", required=True)
    smoke = sub.add_parser(
        "smoke", help="replay the stream and print serving counters")
    _add_serve_args(smoke)
    smoke.add_argument("--stats", action="store_true",
                       help="embed the full repro.obs/1 stats snapshot")
    smoke.add_argument("--fault", choices=("raise",), default=None,
                       help="inject a worker fault past the retry budget "
                            "(demos degradation + the postmortem dump)")
    smoke.add_argument("--postmortem-dir", default=None, metavar="DIR",
                       help="where --fault postmortems land "
                            "(default: current directory)")
    smoke.set_defaults(fn=_smoke)
    stats = sub.add_parser(
        "stats", help="replay the stream and print the repro.obs/1 "
                      "stats snapshot")
    _add_serve_args(stats)
    stats.add_argument("--prom", action="store_true",
                       help="Prometheus-style text exposition instead "
                            "of JSON")
    stats.set_defaults(fn=_stats)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
