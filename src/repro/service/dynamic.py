"""Dynamic families: named incremental envelopes behind the service.

The write-traffic half of the serving story.  A *dynamic family* is a
named, versioned curve population whose envelope is maintained in place
by :class:`repro.incremental.IncrementalEnvelope`; a mutation
(insert/delete/retarget) costs amortized incremental work instead of a
full recompute, and invalidates exactly the run keys that family's
queries cache under — nothing else (``ShardedResultCache.invalidate``,
with exact counters).

The store follows the cache-hygiene discipline (RPR004): it is
**bounded** (``max_families``, creation past the cap is a structured
error, never silent growth), **clearable** (:meth:`clear`, called on
service shutdown), and **accounted** (:meth:`stats`).

Parity contract: a dynamic family's encoded envelope entry is
byte-identical to what :func:`repro.service.model.run_driver` would
encode for a cold serial run over the surviving curves — pinned by
``tests/service/test_mutations.py`` and the ``repro.verify
incremental`` campaign.  Queries against it therefore answer through
the same pure :func:`repro.service.model.answer_query` path as driver
results.
"""

from __future__ import annotations

from ..incremental import IncrementalEnvelope
from ..verify.generators import make_curves
from .model import ServiceError, _encode_envelope, dynamic_run_key

__all__ = ["DynamicFamily", "DynamicFamilyStore"]


class DynamicFamily:
    """One named dynamic family: engine + cache-key registration."""

    __slots__ = ("name", "engine", "op", "cached_keys")

    def __init__(self, name: str, engine: IncrementalEnvelope) -> None:
        self.name = name
        self.engine = engine
        self.op = engine.op
        #: Run keys currently cached for this family — the exact set a
        #: mutation must invalidate.
        self.cached_keys: set[tuple] = set()

    def info(self) -> dict:
        """Deterministic coordinates of the family's current state."""
        return {
            "name": self.name,
            "op": self.op,
            "version": self.engine.version,
            "size": len(self.engine),
            "pieces": len(self.engine.envelope.pieces),
        }


class DynamicFamilyStore:
    """Named dynamic families, mutated in place, invalidated exactly."""

    def __init__(self, max_families: int = 64) -> None:
        self.max_families = max(1, int(max_families))
        self._families: dict[str, DynamicFamily] = {}
        self.mutations = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def names(self) -> list[str]:
        return sorted(self._families)

    def family(self, name: str) -> DynamicFamily:
        fam = self._families.get(name)
        if fam is None:
            raise ServiceError("no_such_family",
                               f"no dynamic family named {name!r}",
                               {"name": name, "have": self.names()})
        return fam

    def engine(self, name: str) -> IncrementalEnvelope:
        return self.family(name).engine

    # ------------------------------------------------------------------
    # Mutations (state transitions; shape already validated upstream)
    # ------------------------------------------------------------------
    def apply(self, name: str, action: str, params: dict) -> dict:
        """Apply one mutation; returns the action's result fields.

        Raises :class:`ServiceError` for state errors (unknown family,
        duplicate create, unknown curve id, store full).
        """
        handler = getattr(self, f"_apply_{action}")
        result = handler(name, dict(params))
        self.mutations += 1
        return result

    def _apply_create(self, name: str, params: dict) -> dict:
        if name in self._families:
            raise ServiceError("family_exists",
                               f"dynamic family {name!r} already exists",
                               {"name": name})
        if len(self._families) >= self.max_families:
            raise ServiceError("store_full",
                               f"dynamic family store is at its cap "
                               f"({self.max_families}); drop one first",
                               {"max_families": self.max_families})
        degree = int(params.get("degree", 2))
        engine = IncrementalEnvelope(s=degree, op=params.get("op", "min"))
        kind = params.get("kind")
        seeded = 0
        if kind is not None and int(params.get("n", 0)) > 0:
            base = make_curves(kind, int(params.get("seed", 0)),
                               n=int(params["n"]), s=degree)
            engine.reset(base)
            seeded = len(base)
        fam = self._families[name] = DynamicFamily(name, engine)
        return {**fam.info(), "seeded": seeded}

    def _apply_drop(self, name: str, params: dict) -> dict:
        fam = self.family(name)
        del self._families[name]
        return fam.info()

    def _apply_insert(self, name: str, params: dict) -> dict:
        fam = self.family(name)
        try:
            cid = fam.engine.insert(params["coeffs"])
        except ValueError as exc:
            raise ServiceError("bad_curve", str(exc), {"name": name})
        return {**fam.info(), "curve_id": cid,
                "update": dict(fam.engine.last_update)}

    def _apply_delete(self, name: str, params: dict) -> dict:
        fam = self.family(name)
        try:
            fam.engine.delete(params["curve_id"])
        except KeyError as exc:
            raise ServiceError("no_such_curve", str(exc.args[0]),
                               {"name": name,
                                "curve_id": params["curve_id"]})
        return {**fam.info(), "curve_id": params["curve_id"],
                "update": dict(fam.engine.last_update)}

    def _apply_retarget(self, name: str, params: dict) -> dict:
        fam = self.family(name)
        try:
            fam.engine.retarget(params["curve_id"], params["coeffs"])
        except KeyError as exc:
            raise ServiceError("no_such_curve", str(exc.args[0]),
                               {"name": name,
                                "curve_id": params["curve_id"]})
        except ValueError as exc:
            raise ServiceError("bad_curve", str(exc), {"name": name})
        return {**fam.info(), "curve_id": params["curve_id"],
                "update": dict(fam.engine.last_update)}

    # ------------------------------------------------------------------
    # Query-side support
    # ------------------------------------------------------------------
    def run_key(self, name: str) -> tuple:
        return dynamic_run_key(name, self.family(name).op)

    def entry(self, name: str) -> dict:
        """A cacheable run entry for the family's current envelope.

        Same schema as :func:`repro.service.model.run_driver` output —
        and byte-identical to it for the surviving curves: the engine's
        rank-labelled envelope encodes exactly as the cold serial run's
        (the parity contract), with no simulated charges (the
        incremental backend does host arithmetic only).
        """
        fam = self.family(name)
        result = _encode_envelope(fam.engine.as_reference())
        return {"result": result, "sim": None, "sim_time": 0.0}

    def note_cached(self, name: str, key: tuple) -> None:
        """Record that ``key`` now caches this family's entry."""
        self.family(name).cached_keys.add(key)

    def take_cached(self, name: str) -> set[tuple]:
        """Claim (and forget) the family's cached keys for invalidation."""
        fam = self.family(name)
        keys, fam.cached_keys = fam.cached_keys, set()
        return keys

    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._families.clear()

    def stats(self) -> dict:
        return {
            "families": len(self._families),
            "max_families": self.max_families,
            "mutations": self.mutations,
            "curves": sum(len(f.engine) for f in self._families.values()),
            "pieces": sum(len(f.engine.envelope.pieces)
                          for f in self._families.values()),
        }
