"""Envelope-as-a-service: batched, cached, sharded query serving.

The serving layer of ROADMAP item 2.  Clients submit
``(curve-family, query)`` requests to an asyncio :class:`QueryService`;
compatible queries (same family + algorithm + machine model) batch into
single simulated runs, families shard deterministically across worker
pools, and repeat traffic is served from a bounded sharded cache — with
the hard contract that none of it can change a response byte
(``docs/service.md``, enforced by ``tests/service/``).

Layout:

``model``    requests, run keys, encoded results, answers, provenance
``planner``  pending requests -> deterministic batch units
``cache``    sharded bounded LRU over finished run entries
``workers``  per-shard pools + the picklable batch entry point
``server``   the asyncio front end (batching loop, retries, spans)
"""

from .cache import ShardedResultCache
from .model import (
    ALGORITHMS,
    BACKENDS,
    FamilySpec,
    QueryRequest,
    QueryResponse,
    ServiceError,
    direct_response,
    request,
    run_key,
    shard_of,
    validate_request,
)
from .planner import BatchUnit, plan_batches
from .server import QueryService, ServiceStats
from .workers import ShardPools, direct_item, execute_batch

__all__ = [
    "ALGORITHMS", "BACKENDS", "FamilySpec", "QueryRequest", "QueryResponse",
    "ServiceError", "QueryService", "ServiceStats", "ShardedResultCache",
    "ShardPools", "BatchUnit", "plan_batches", "request", "run_key",
    "shard_of", "direct_response", "direct_item", "execute_batch",
    "validate_request",
]
