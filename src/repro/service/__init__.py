"""Envelope-as-a-service: batched, cached, sharded query serving.

The serving layer of ROADMAP item 2.  Clients submit
``(curve-family, query)`` requests to an asyncio :class:`QueryService`;
compatible queries (same family + algorithm + machine model) batch into
single simulated runs, families shard deterministically across worker
pools, and repeat traffic is served from a bounded sharded cache — with
the hard contract that none of it can change a response byte
(``docs/service.md``, enforced by ``tests/service/``).

Layout:

``model``    requests, mutations, run keys, encoded results, answers
``planner``  pending requests -> deterministic batch units
``cache``    sharded bounded LRU over finished run entries
``dynamic``  named incremental-envelope families (write traffic)
``workers``  per-shard pools + the picklable batch entry point
``server``   the asyncio front end (batching loop, retries, spans)
"""

from .cache import ShardedResultCache
from .dynamic import DynamicFamily, DynamicFamilyStore
from .model import (
    ALGORITHMS,
    BACKENDS,
    MUTATION_OPS,
    FamilySpec,
    MutationRequest,
    QueryRequest,
    QueryResponse,
    ServiceError,
    direct_response,
    dynamic_run_key,
    mutation,
    request,
    run_key,
    shard_of,
    validate_mutation,
    validate_request,
)
from .planner import BatchUnit, plan_batches
from .server import QueryService, ServiceStats
from .workers import ShardPools, direct_item, execute_batch

__all__ = [
    "ALGORITHMS", "BACKENDS", "MUTATION_OPS", "FamilySpec",
    "MutationRequest", "QueryRequest", "QueryResponse", "ServiceError",
    "QueryService", "ServiceStats", "ShardedResultCache", "ShardPools",
    "DynamicFamily", "DynamicFamilyStore", "BatchUnit", "plan_batches",
    "mutation", "request", "run_key", "dynamic_run_key", "shard_of",
    "direct_response", "direct_item", "execute_batch", "validate_mutation",
    "validate_request",
]
