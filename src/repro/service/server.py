"""Envelope-as-a-service: the asyncio batching/caching query server.

:class:`QueryService` is the long-running front end of ROADMAP item 2:
clients ``await submit(request)`` with a ``(curve-family, query)``
request; a batching loop collects concurrent arrivals, the planner
(:mod:`repro.service.planner`) collapses compatible queries into batch
units backed by a single simulated run each, units are sharded
deterministically across worker pools, and repeat traffic is served from
the sharded bounded cache (:mod:`repro.service.cache`).

Serving discipline:

* **event-loop purity** — the loop only plans, keys, caches, and
  evaluates encoded answers; every simulated run crosses into a shard
  worker via ``pool.submit`` (RPR007 enforces this statically: async
  handlers must not call blocking driver code);
* **determinism** — a response payload is a pure function of the request
  and the service configuration.  Batching, dedupe, caching, shard
  count, worker mode, and arrival order can change only *metadata*
  (latency, cache flags), never a payload byte;
* **degradation** — a failed worker (killed process, raised fault) is
  retried on a fresh pool up to ``retries`` times, then the batch's
  waiters receive a structured :class:`~repro.service.model.ServiceError`
  — the service itself keeps serving;
* **observability** — every served batch appends a ``batch`` span (with
  the run's simulated charges) carrying per-request child spans, and
  hit/miss/batch-size counters land in the process-wide
  :class:`~repro.trace.registry.MetricsRegistry`.  Responses carry a
  ``repro.provenance/1`` manifest.

Operational telemetry (:mod:`repro.obs`, docs/operations.md) rides every
serving path: a correlation id (``cid``) is minted at submit time and
propagated through planner batches (``bid``), worker payloads, retries,
spans, and the structured lifecycle event log, so one grep reconstructs
any request's path; latency/size/depth distributions land in
deterministic log2 histograms; :meth:`QueryService.stats` returns the
versioned ``repro.obs/1`` snapshot; and a bounded flight recorder dumps
a ``repro.postmortem/1`` file on degradation or worker death.  All of it
is host-clock-only — with telemetry fully enabled, response payloads and
simulated charges are bit-identical to an untelemetered run.
"""

from __future__ import annotations

import asyncio
import pathlib
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable

from ..obs.telemetry import STATS_SCHEMA, ServiceTelemetry
from ..ops.plans import EXECUTORS
from ..trace.provenance import provenance_manifest
from ..trace.registry import get_counter
from .cache import ShardedResultCache
from .dynamic import DynamicFamilyStore
from .model import (
    MutationRequest,
    QueryRequest,
    QueryResponse,
    ServiceError,
    _QUERY_SHAPES,
    answer_query,
    response_payload,
    validate_mutation,
    validate_request,
)
from .planner import BatchUnit, plan_batches
from .workers import ShardPools, execute_batch

__all__ = ["QueryService", "ServiceStats"]

_REQUESTS = get_counter("service.requests")
_RESPONSES = get_counter("service.responses")
_BATCHES = get_counter("service.batches")
_BATCHED = get_counter("service.batched_requests")
_BATCH_MAX = get_counter("service.batch_max")
_DEDUP = get_counter("service.dedup_hits")
_RETRIES = get_counter("service.retries")
_ERRORS = get_counter("service.errors")
_CANCELLED = get_counter("service.cancelled")
_MUTATIONS = get_counter("service.mutations")
_DYN_QUERIES = get_counter("service.dynamic_queries")
_POSTMORTEMS = get_counter("service.postmortems")


@dataclass
class _Pending:
    """One submitted request awaiting its response."""

    request: QueryRequest
    future: asyncio.Future
    t0: float
    #: Correlation id minted at submit time (`q-...`), carried through
    #: events, batch payloads, spans, and the response metadata.
    cid: str = ""


@dataclass
class ServiceStats:
    """Exact instance counters for one service's lifetime."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    cancelled: int = 0
    batches: int = 0
    batched_requests: int = 0
    batch_max: int = 0
    dedup_hits: int = 0
    cache_hit_requests: int = 0
    cold_requests: int = 0
    coalesced_requests: int = 0
    retries: int = 0
    spans_dropped: int = 0
    mutations: int = 0
    dynamic_queries: int = 0
    dynamic_cache_hits: int = 0
    invalidated_keys: int = 0
    postmortems: int = 0
    #: Simulated time of the cold runs this service executed — the
    #: service's "work done" on the simulated clock, accumulated from
    #: run entries (telemetry never adds charges of its own).
    sim_time_served: float = 0.0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class QueryService:
    """Batched, cached, sharded asyncio query server over the drivers.

    Use as an async context manager::

        async with QueryService(shards=4) as svc:
            resp = await svc.submit(request("envelope", kind="random",
                                            seed=3, n=8, op="min"))

    ``workers`` selects the shard pool mode: ``"thread"`` (in-process,
    inherits the ambient data-movement executor and caches; the default)
    or ``"process"`` (isolated workers; worker death is survivable and
    ``executor`` may pin a data-movement executor per run).  Pinning an
    executor under thread workers is rejected: threads share the
    process-wide executor switch, so per-run pinning would race.
    """

    def __init__(self, *, shards: int = 2, workers: str = "thread",
                 cache_capacity: int = 256, cache_shards: int | None = None,
                 batching: bool = True, max_batch: int = 64,
                 batch_window: float = 0.0, machine_size: int = 64,
                 executor: str | None = None, retries: int = 1,
                 span_limit: int = 4096, provenance: bool = True,
                 event_capacity: int = 4096, recorder_events: int = 512,
                 recorder_spans: int = 256,
                 events_path: str | pathlib.Path | None = None,
                 postmortem_dir: str | pathlib.Path | None = None,
                 ) -> None:
        if executor is not None and executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; "
                             f"have {EXECUTORS}")
        if executor is not None and workers == "thread":
            raise ValueError(
                "executor pinning requires process workers; thread workers "
                "share the process-wide executor switch (set it at the "
                "edge with repro.ops.set_compiled_plans instead)")
        self.n_shards = max(1, int(shards))
        self.worker_mode = workers
        self.batching = bool(batching)
        self.max_batch = max(1, int(max_batch))
        self.batch_window = float(batch_window)
        self.machine_size = int(machine_size)
        self.executor = executor
        self.retries = max(0, int(retries))
        self.span_limit = max(0, int(span_limit))
        self._want_provenance = bool(provenance)
        self.cache = ShardedResultCache(
            cache_capacity,
            shards=cache_shards if cache_shards is not None else self.n_shards,
        )
        self.dynamic = DynamicFamilyStore()
        self.counters = ServiceStats()
        self.obs = ServiceTelemetry(event_capacity=event_capacity,
                                    recorder_events=recorder_events,
                                    recorder_spans=recorder_spans,
                                    events_path=events_path)
        self.postmortem_dir = postmortem_dir
        self.last_postmortem = None
        self._t0: float | None = None
        self._uptime = 0.0
        self.spans: list[dict] = []
        self._pending: list[_Pending] = []
        self._inflight: dict[tuple, asyncio.Task] = {}
        self._faults: list[str] = []
        self._pools: ShardPools | None = None
        self._batcher: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._provenance: dict = {}
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryService":
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        config = {
            "shards": self.n_shards, "workers": self.worker_mode,
            "cache_capacity": self.cache.capacity,
            "batching": self.batching, "max_batch": self.max_batch,
            "batch_window": self.batch_window,
            "machine_size": self.machine_size, "executor": self.executor,
        }
        if self._want_provenance:
            self._provenance = provenance_manifest(config=config)
        else:
            self._provenance = {"schema": "repro.provenance/1",
                                "config": config}
        self._pools = ShardPools(self.n_shards, self.worker_mode)
        self._wake = asyncio.Event()
        self._batcher = self._loop.create_task(self._batch_loop())
        self._t0 = perf_counter()
        self._started = True
        return self

    async def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        assert self._batcher is not None and self._pools is not None
        self._batcher.cancel()
        try:
            await self._batcher
        except asyncio.CancelledError:
            pass
        err = ServiceError("shutdown", "service stopped with the request "
                                       "still pending")
        for pending in self._pending:
            if not pending.future.done():
                pending.future.set_exception(err)
                self.obs.emit("failed", pending.cid, code="shutdown")
        self._pending.clear()
        inflight = list(self._inflight.values())
        for task in inflight:
            task.cancel()
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)
        self._inflight.clear()
        self.dynamic.clear()
        self._pools.shutdown()
        if self._t0 is not None:
            self._uptime = perf_counter() - self._t0
            self._t0 = None
        self.obs.close()

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    async def submit(self, req: QueryRequest) -> QueryResponse:
        """Serve one request; raises :class:`ServiceError` on failure."""
        if not self._started:
            raise ServiceError("not_started", "call start() (or use the "
                                              "service as an async context "
                                              "manager) before submitting")
        cid = self.obs.mint("q")
        self.obs.emit("request_received", cid, algorithm=req.algorithm)
        problems = validate_request(req)
        if problems:
            self.obs.emit("failed", cid, code="bad_request")
            raise ServiceError("bad_request", "; ".join(problems),
                               {"request": req.to_dict(), "cid": cid})
        assert self._loop is not None and self._wake is not None
        fut: asyncio.Future = self._loop.create_future()
        self._pending.append(_Pending(req, fut, perf_counter(), cid))
        self.counters.requests += 1
        _REQUESTS.inc()
        self._wake.set()
        return await fut

    async def submit_many(
            self, reqs: Iterable[QueryRequest]) -> list[QueryResponse]:
        """Serve many requests concurrently, results in request order."""
        return list(await asyncio.gather(*(self.submit(r) for r in reqs)))

    async def mutate(self, m: MutationRequest) -> QueryResponse:
        """Apply one write to a dynamic family; returns the mutation
        receipt as a response.

        The incremental engine updates the envelope in place (amortized
        incremental cost — never a full simulated recompute), then the
        family's cached run keys are evicted one by one
        (``cache.invalidate``): targeted invalidation with exact
        accounting, leaving every other family's entries untouched.
        State errors (unknown family, unknown curve id) raise
        :class:`ServiceError` with a machine-readable code.
        """
        if not self._started:
            raise ServiceError("not_started", "call start() (or use the "
                                              "service as an async context "
                                              "manager) before mutating")
        cid = self.obs.mint("m")
        problems = validate_mutation(m)
        if problems:
            self.obs.emit("failed", cid, code="bad_mutation")
            raise ServiceError("bad_mutation", "; ".join(problems),
                               {"mutation": m.to_dict(), "cid": cid})
        t0 = perf_counter()
        keys: set = set()
        if m.action == "drop" and m.name in self.dynamic:
            # The drop discards the family object (and its key
            # registration) — capture the keys first.
            keys = set(self.dynamic.family(m.name).cached_keys)
        try:
            result = self.dynamic.apply(m.name, m.action, dict(m.params))
        except ServiceError as exc:
            self.obs.emit("failed", cid, code=exc.code, name=m.name,
                          action=m.action)
            raise
        if m.name in self.dynamic:
            keys |= self.dynamic.take_cached(m.name)
        invalidated = sum(
            1 for key in keys if self.cache.invalidate(key)
        )
        self.counters.mutations += 1
        self.counters.invalidated_keys += invalidated
        _MUTATIONS.inc()
        latency = perf_counter() - t0
        self.obs.emit("mutation_applied", cid, name=m.name, action=m.action,
                      version=result.get("version"), invalidated=invalidated)
        if invalidated:
            self.obs.emit("cache_invalidated", cid, name=m.name,
                          keys=invalidated)
        self._record_aux_span(f"mutation:{m.action}", "mutation", {
            "cid": cid, "name": m.name, "action": m.action,
            "invalidated": invalidated, "version": result.get("version"),
        }, latency)
        payload = {
            "schema": "repro.service/1",
            "mutation": m.to_dict(),
            "result": result,
            "invalidated": invalidated,
        }
        meta = {"latency_s": latency,
                "invalidated": invalidated,
                "cid": cid}
        return QueryResponse(payload, meta, self._provenance)

    async def submit_dynamic(self, name: str, **params) -> QueryResponse:
        """Serve an envelope query against a dynamic family.

        Read traffic against mutated state: the answer comes from the
        maintained envelope's encoded entry (cached under the family's
        run key until the next mutation evicts it) through the same
        pure ``answer_query`` path as driver results — so after any
        mutation sequence the answer is byte-identical to a cold serial
        driver run over the surviving curves.
        """
        if not self._started:
            raise ServiceError("not_started", "call start() (or use the "
                                              "service as an async context "
                                              "manager) before submitting")
        t0 = perf_counter()
        cid = self.obs.mint("d")
        self.obs.emit("request_received", cid, algorithm="envelope",
                      domain="dynamic", name=name)
        query = dict(params)
        query.setdefault("q", "full")
        shapes = _QUERY_SHAPES["envelope"]
        if query["q"] not in shapes:
            self.obs.emit("failed", cid, code="bad_request", name=name)
            raise ServiceError("bad_request",
                               f"unknown envelope query {query['q']!r}; "
                               f"have {sorted(shapes)}", {"name": name})
        for needed in shapes[query["q"]]:
            if needed not in query:
                self.obs.emit("failed", cid, code="bad_request", name=name)
                raise ServiceError("bad_request",
                                   f"query {query['q']!r} requires "
                                   f"parameter {needed!r}", {"name": name})
        try:
            fam = self.dynamic.family(name)
        except ServiceError as exc:
            self.obs.emit("failed", cid, code=exc.code, name=name)
            raise
        key = self.dynamic.run_key(name)
        t_lookup = perf_counter()
        entry = self.cache.get(key)
        self.obs.observe("cache_lookup_s", perf_counter() - t_lookup)
        cache_hit = entry is not None
        if entry is None:
            entry = self.dynamic.entry(name)
            self.cache.put(key, entry)
            self.dynamic.note_cached(name, key)
        self.counters.dynamic_queries += 1
        if cache_hit:
            self.counters.dynamic_cache_hits += 1
        _DYN_QUERIES.inc()
        payload = {
            "schema": "repro.service/1",
            "algorithm": "envelope",
            "family": {"domain": "dynamic", "name": name,
                       "version": fam.engine.version,
                       "size": len(fam.engine)},
            "backend": "incremental",
            "machine_size": 0,
            "executor": None,
            "run_params": {"op": fam.op},
            "query": query,
            "answer": answer_query("envelope", entry["result"], query),
            "sim_time": entry["sim_time"],
        }
        latency = perf_counter() - t0
        self.obs.observe("request_latency_s", latency)
        self.obs.emit("completed", cid, cache_hit=cache_hit, name=name)
        self._record_aux_span("dynamic:envelope", "dynamic", {
            "cid": cid, "name": name, "cache_hit": cache_hit,
            "query": query.get("q"),
        }, latency)
        meta = {"cache_hit": cache_hit,
                "latency_s": latency,
                "cid": cid}
        return QueryResponse(payload, meta, self._provenance)

    def inject_fault(self, mode: str, count: int = 1) -> None:
        """Arm ``count`` one-shot worker faults (test hook).

        ``"raise"`` makes the next batch attempts raise inside the
        worker; ``"die"`` kills the worker process mid-batch (process
        pools only — killing a thread worker would kill the server).
        """
        if mode not in ("raise", "die"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if mode == "die" and self.worker_mode != "process":
            raise ValueError("fault mode 'die' requires process workers")
        self._faults.extend([mode] * max(1, int(count)))

    # ------------------------------------------------------------------
    # Batching loop
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            else:
                await asyncio.sleep(0)
            pending, self._pending = self._pending, []
            if not pending:
                continue
            self.obs.observe("queue_depth", len(pending))
            units = plan_batches(
                pending, machine_size=self.machine_size,
                executor=self.executor, n_shards=self.n_shards,
                batching=self.batching, max_batch=self.max_batch,
            )
            for unit in units:
                self._dispatch(unit)

    def _dispatch(self, unit: BatchUnit) -> None:
        assert self._loop is not None
        unit.bid = self.obs.mint("b")
        self.counters.batches += 1
        self.counters.batched_requests += unit.size
        self.counters.dedup_hits += unit.dedup_hits
        _BATCHES.inc()
        _BATCHED.inc(unit.size)
        _DEDUP.inc(unit.dedup_hits)
        if unit.size > self.counters.batch_max:
            self.counters.batch_max = unit.size
            _BATCH_MAX.value = max(_BATCH_MAX.value, unit.size)
        self.obs.observe("batch_size", unit.size)
        # One batch-scoped event for the whole unit (like ``dispatched``):
        # ``cids`` carries every attached request, so ``for_cid`` still
        # reconstructs each chain at a fraction of the per-request cost.
        self.obs.emit("batched", unit.bid,
                      cids=[pending.cid for pending in unit.waiters],
                      size=unit.size, shard=unit.shard)
        t_lookup = perf_counter()
        entry = self.cache.get(unit.key)
        self.obs.observe("cache_lookup_s", perf_counter() - t_lookup)
        if entry is not None:
            self.counters.cache_hit_requests += unit.size
            self._resolve(unit, entry, cache_hit=True)
            return
        task = self._inflight.get(unit.key) if self.batching else None
        coalesced = task is not None
        if task is None:
            task = self._loop.create_task(self._run_unit(unit))
            if self.batching:
                self._inflight[unit.key] = task
        self._loop.create_task(self._deliver(unit, task, coalesced))

    async def _run_unit(self, unit: BatchUnit) -> dict:
        try:
            entry = await self._execute_with_retries(unit)
        finally:
            self._inflight.pop(unit.key, None)
        self.counters.sim_time_served += float(entry.get("sim_time") or 0.0)
        self.cache.put(unit.key, entry)
        return entry

    async def _deliver(self, unit: BatchUnit, task: asyncio.Task,
                       coalesced: bool) -> None:
        try:
            entry = await asyncio.shield(task)
        except asyncio.CancelledError:
            entry = None
            err = ServiceError("shutdown", "service stopped mid-batch",
                               {"algorithm": unit.algorithm})
        except ServiceError as exc:
            entry = None
            err = exc
        except Exception as exc:  # defensive: a bug must not hang waiters
            entry = None
            err = ServiceError("internal", f"unexpected batch failure: "
                                           f"{exc!r}",
                               {"algorithm": unit.algorithm})
        if entry is None:
            for pending in unit.waiters:
                if not pending.future.done():
                    pending.future.set_exception(err)
                    self.obs.emit("failed", pending.cid, batch=unit.bid,
                                  code=err.code)
            if err.code == "worker_failed" and not coalesced:
                # Degradation: the batch exhausted its retries.  Dump
                # after the failed events so the postmortem carries each
                # waiter's full chain (received -> ... -> failed).
                self._postmortem("service_error", {
                    "batch": unit.bid, "shard": unit.shard,
                    "algorithm": unit.algorithm, "code": err.code,
                    "cids": [p.cid for p in unit.waiters],
                    "detail": err.detail,
                })
            return
        if coalesced:
            self.counters.coalesced_requests += unit.size
        else:
            self.counters.cold_requests += unit.size
        self._resolve(unit, entry, cache_hit=False, coalesced=coalesced)

    async def _execute_with_retries(self, unit: BatchUnit) -> dict:
        assert self._pools is not None
        attempts = 0
        cids = [pending.cid for pending in unit.waiters]
        while True:
            attempts += 1
            payload = self._build_payload(unit)
            self.obs.emit("dispatched", unit.bid, shard=unit.shard,
                          attempt=attempts, cids=cids)
            try:
                pool = self._pools.pool(unit.shard)
                entry = await asyncio.wrap_future(
                    pool.submit(execute_batch, payload))
                entry["attempts"] = attempts
                self.obs.observe("worker_turnaround_s",
                                 float(entry.get("wall", 0.0)))
                return entry
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                if isinstance(exc, BrokenExecutor):
                    self._pools.restart(unit.shard)
                    self._postmortem("worker_death", {
                        "batch": unit.bid, "shard": unit.shard,
                        "attempt": attempts, "algorithm": unit.algorithm,
                        "cids": cids, "error": repr(exc),
                    })
                if attempts > self.retries:
                    self.counters.errors += 1
                    _ERRORS.inc()
                    raise ServiceError(
                        "worker_failed",
                        f"batch failed after {attempts} attempt(s): {exc!r}",
                        {"algorithm": unit.algorithm, "shard": unit.shard,
                         "attempts": attempts,
                         "batch_size": unit.size},
                    ) from exc
                self.counters.retries += 1
                _RETRIES.inc()

    def _build_payload(self, unit: BatchUnit) -> dict:
        proto = unit.waiters[0].request
        fault = self._faults.pop(0) if self._faults else None
        return {
            "algorithm": proto.algorithm,
            "family": proto.family.to_dict(),
            "backend": proto.backend,
            "machine_size": self.machine_size,
            "executor": self.executor,
            "run_params": proto.run_params(),
            "fault": fault,
            # Correlation coordinates: ignored by the worker (the entry
            # stays a pure function of the run coordinates), carried so
            # a payload capture greps back to its requests.
            "batch": unit.bid,
            "cids": [pending.cid for pending in unit.waiters],
        }

    # ------------------------------------------------------------------
    # Response fan-out
    # ------------------------------------------------------------------
    def _resolve(self, unit: BatchUnit, entry: dict, *, cache_hit: bool,
                 coalesced: bool = False) -> None:
        now = perf_counter()
        children = []
        obs_emit = self.obs.emit
        obs_observe = self.obs.observe
        # Waiters dedup-attached to one unit repeat the same request; the
        # payload is a pure function of (entry, request), so build it once
        # per distinct request per unit (bounded by the unit, no
        # invalidation to track — the memo dies with the batch).
        payloads: dict = {}
        for pending in unit.waiters:
            fut = pending.future
            latency = now - pending.t0
            if fut.done():  # the client cancelled: never poison the batch
                self.counters.cancelled += 1
                _CANCELLED.inc()
                continue
            try:
                rk = pending.request.key()
                payload = payloads.get(rk)
                if payload is None:
                    payload = response_payload(
                        pending.request, entry,
                        machine_size=self.machine_size,
                        executor=self.executor)
                    payloads[rk] = payload
            except Exception as exc:
                fut.set_exception(ServiceError(
                    "answer_failed", f"query evaluation failed: {exc!r}",
                    {"request": pending.request.to_dict()}))
                self.counters.errors += 1
                _ERRORS.inc()
                obs_emit("failed", pending.cid, batch=unit.bid,
                         code="answer_failed")
                continue
            meta = {
                "cache_hit": cache_hit,
                "coalesced": coalesced,
                "batch_size": unit.size,
                "dedup_hits": unit.dedup_hits,
                "shard": unit.shard,
                "attempts": entry.get("attempts", 0),
                "latency_s": latency,
                "cid": pending.cid,
            }
            fut.set_result(QueryResponse(payload, meta, self._provenance))
            self.counters.responses += 1
            _RESPONSES.inc()
            obs_observe("request_latency_s", latency)
            obs_emit("completed", pending.cid, batch=unit.bid,
                     cache_hit=cache_hit)
            children.append({
                "name": f"request:{pending.request.algorithm}",
                "cat": "request",
                "attrs": {"latency_s": latency, "cache_hit": cache_hit,
                          "cid": pending.cid},
                "sim": None, "wall": latency, "children": [],
            })
        self._record_span(unit, entry, cache_hit, children)

    def _record_span(self, unit: BatchUnit, entry: dict, cache_hit: bool,
                     children: list) -> None:
        span = {
            "name": f"batch:{unit.algorithm}",
            "cat": "batch",
            "attrs": {
                "shard": unit.shard,
                "size": unit.size,
                "dedup_hits": unit.dedup_hits,
                "cache_hit": cache_hit,
                "attempts": entry.get("attempts", 0),
                "batch": unit.bid,
            },
            "sim": entry.get("sim"),
            "wall": float(entry.get("wall", 0.0)),
            "children": children,
        }
        self._append_span(span)

    def _record_aux_span(self, name: str, cat: str, attrs: dict,
                         wall: float) -> None:
        """A childless host-side span (mutations, dynamic queries)."""
        self._append_span({"name": name, "cat": cat, "attrs": attrs,
                           "sim": None, "wall": wall, "children": []})

    def _append_span(self, span: dict) -> None:
        self.obs.record_span(span)
        if self.span_limit <= 0:
            return
        if len(self.spans) >= self.span_limit:
            del self.spans[0]
            self.counters.spans_dropped += 1
        self.spans.append(span)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def span_forest(self) -> list[dict]:
        """The recorded batch/request span dicts (trace exporter schema).

        The dicts follow :meth:`repro.trace.tracer.Span.to_dict`, so
        ``repro.trace.export`` writers and
        :func:`repro.trace.tracer.span_from_dict` consume them directly.
        """
        return list(self.spans)

    def stats_dict(self) -> dict:
        """Service, cache, and pool counters in one snapshot."""
        out = {"service": self.counters.to_dict(),
               "cache": self.cache.stats(),
               "dynamic": self.dynamic.stats()}
        out["pool_restarts"] = self._pools.restarts if self._pools else 0
        return out

    def uptime_s(self) -> float:
        """Host-clock seconds serving: live while started, frozen at stop."""
        if self._t0 is not None:
            return perf_counter() - self._t0
        return self._uptime

    def stats(self) -> dict:
        """The live ``repro.obs/1`` operational snapshot.

        One versioned dict with everything a scraper or an operator
        wants: exact counters, cache/store occupancy, pool state, full
        histogram bucket arrays, event-log and flight-recorder
        accounting, and uptime on **both** clocks (host seconds serving,
        simulated time executed in cold runs).  Render it as text with
        :func:`repro.obs.prom.render_prometheus`.
        """
        return {
            "schema": STATS_SCHEMA,
            "uptime": {
                "wall_s": self.uptime_s(),
                "sim_time_served": self.counters.sim_time_served,
            },
            "counters": self.counters.to_dict(),
            "cache": self.cache.stats(),
            "dynamic": self.dynamic.stats(),
            "pools": {
                "shards": self.n_shards,
                "mode": self.worker_mode,
                "restarts": self._pools.restarts if self._pools else 0,
            },
            "histograms": self.obs.histogram_dicts(),
            "events": self.obs.events.stats(),
            "recorder": self.obs.recorder.stats(),
        }

    # ------------------------------------------------------------------
    # Postmortems
    # ------------------------------------------------------------------
    def _postmortem(self, reason: str, context: dict) -> None:
        """Dump the flight recorder on degradation or worker death.

        Disabled (ring still retained for :meth:`dump_postmortem`) when
        no ``postmortem_dir`` is configured — a library embedding the
        service opts into file drops explicitly.
        """
        if self.postmortem_dir is None:
            return
        self.counters.postmortems += 1
        _POSTMORTEMS.inc()
        name = f"postmortem-{self.counters.postmortems:03d}-{reason}.json"
        path = pathlib.Path(self.postmortem_dir) / name
        self.last_postmortem = self.obs.recorder.dump(
            path, reason, context, self.stats_dict(),
            provenance=self._want_provenance)

    def dump_postmortem(self, path: str | pathlib.Path,
                        reason: str = "manual",
                        context: dict | None = None) -> pathlib.Path:
        """Write a postmortem dump on demand (operator escape hatch)."""
        return self.obs.recorder.dump(path, reason, context or {},
                                      self.stats_dict(),
                                      provenance=self._want_provenance)
