"""Sharded, bounded, LRU result cache for the query service.

Repeat traffic dominates a zipf-skewed query mix, so finished run entries
(encoded driver results plus their simulated charges — see
:func:`repro.service.model.run_driver`) are cached under their run key.
The cache follows the repo's cache-hygiene discipline (RPR004, enforced
for module-level memos and mirrored here for instance state):

* **bounded** — per-shard capacity with LRU eviction; an adversarial or
  merely diverse stream cannot grow a shard past its cap;
* **clearable** — :meth:`ShardedResultCache.clear` empties every shard
  (and the service calls it on shutdown);
* **accounted** — hits/misses/evictions are exact instance counters,
  mirrored into the process-wide :mod:`repro.trace.registry` so the
  ``--verbose`` counter table and trace exports show serving behaviour
  next to the crossing/plan caches.

Entries are immutable once inserted (the service never mutates a cached
run), so a hit returns the same object a cold run produced — byte-equal
responses fall out of that plus the deterministic payload encoding.
"""

from __future__ import annotations

import math

from ..trace.registry import get_counter
from .model import shard_of

__all__ = ["ShardedResultCache"]

_HITS = get_counter("service.cache.hits")
_MISSES = get_counter("service.cache.misses")
_EVICTIONS = get_counter("service.cache.evictions")
_INVALIDATIONS = get_counter("service.cache.invalidations")


class ShardedResultCache:
    """LRU dictionaries sharded by the deterministic family shard.

    ``capacity`` is the total entry budget, split evenly across
    ``shards`` (each shard holds at least one entry).  ``capacity <= 0``
    disables the cache: every ``get`` is a miss and ``put`` is a no-op,
    which is how the service runs cache-less without a second code path.
    """

    def __init__(self, capacity: int, shards: int = 4) -> None:
        self.capacity = int(capacity)
        self.n_shards = max(1, int(shards))
        self.per_shard = (
            0 if self.capacity <= 0
            else max(1, math.ceil(self.capacity / self.n_shards))
        )
        self._shards: list[dict] = [{} for _ in range(self.n_shards)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def _shard(self, key: tuple) -> dict:
        return self._shards[shard_of(key, self.n_shards)]

    def get(self, key: tuple) -> dict | None:
        """The cached entry for ``key`` (refreshing recency), or ``None``."""
        if self.per_shard == 0:
            self.misses += 1
            _MISSES.inc()
            return None
        shard = self._shard(key)
        entry = shard.pop(key, None)
        if entry is None:
            self.misses += 1
            _MISSES.inc()
            return None
        shard[key] = entry  # reinsert: most-recently-used position
        self.hits += 1
        _HITS.inc()
        return entry

    def put(self, key: tuple, entry: dict) -> None:
        """Insert ``entry``, evicting the shard's LRU entries past the cap."""
        if self.per_shard == 0:
            return
        shard = self._shard(key)
        shard.pop(key, None)
        while len(shard) >= self.per_shard:
            oldest = next(iter(shard))
            del shard[oldest]
            self.evictions += 1
            _EVICTIONS.inc()
        shard[key] = entry

    def invalidate(self, key: tuple) -> bool:
        """Evict one entry by key (targeted invalidation, not aging).

        Returns True when an entry was actually removed.  Mutation
        traffic uses this to evict exactly the run keys a write
        affected — ``invalidations`` counts real removals only, so
        ``tests/service/test_mutations.py`` can pin the eviction set
        exactly (a mutation must never clear unrelated entries).
        """
        if self.per_shard == 0:
            return False
        removed = self._shard(key).pop(key, None) is not None
        if removed:
            self.invalidations += 1
            _INVALIDATIONS.inc()
        return removed

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    # ------------------------------------------------------------------
    def size(self) -> int:
        return sum(len(s) for s in self._shards)

    def shard_sizes(self) -> list[int]:
        return [len(s) for s in self._shards]

    def stats(self) -> dict:
        """Exact instance counters; ``hits + misses`` equals lookups."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "lookups": lookups,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "size": self.size(),
            "capacity": self.capacity,
            "shards": self.n_shards,
            "per_shard": self.per_shard,
        }
