"""Shard worker pools and the (picklable) batch execution entry point.

Each shard owns a single-worker executor — a thread for in-process
serving, a subprocess for isolation — so runs for one family are
serialized per shard while distinct shards execute concurrently.  The
worker entry point :func:`execute_batch` follows the campaign engine's
fork-safety contract (RPR005): it is a module-level function of its
payload alone, the payload is plain JSON (family *coordinates*, never
live objects — the worker rebuilds the family deterministically), and the
result dict is a pure function of the payload for every pool mode.

Fault injection rides the payload: the server plants ``fault`` markers
(consumed per attempt) so tests can kill a worker mid-batch or make it
raise, and assert the retry/degrade behaviour without monkeypatching
worker internals.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from time import perf_counter

from ..ops.plans import set_compiled_plans
from ..trace.registry import get_counter
from .model import FamilySpec, QueryRequest, direct_response, run_driver

__all__ = ["execute_batch", "direct_item", "ShardPools", "WORKER_MODES"]

WORKER_MODES = ("thread", "process")

_RESTARTS = get_counter("service.pool.restarts")


def execute_batch(payload: dict) -> dict:
    """Run one batch unit's simulated run; returns the run entry.

    ``payload`` carries the run coordinates (algorithm, family spec,
    backend, machine size, run parameters), the executor to pin for the
    run (``None`` inherits the process's current executor), and an
    optional injected ``fault``.  The returned entry is JSON-plain:
    ``{"result", "sim", "sim_time", "wall"}``.
    """
    fault = payload.get("fault")
    if fault == "raise":
        raise RuntimeError("injected worker fault (service test)")
    if fault == "die":  # pragma: no cover - kills the worker process
        os._exit(23)
    executor = payload.get("executor")
    prev = set_compiled_plans(executor) if executor is not None else None
    t0 = perf_counter()
    try:
        family = FamilySpec.from_dict(payload["family"])
        entry = run_driver(payload["algorithm"], family,
                           payload["run_params"], payload["backend"],
                           payload["machine_size"])
    finally:
        if prev is not None:
            set_compiled_plans(prev)
    entry["wall"] = perf_counter() - t0
    return entry


def direct_item(item: tuple) -> dict:
    """Campaign-engine worker: one per-query driver run (the oracle side).

    ``item`` is ``(request, machine_size, executor)``; used with
    :func:`repro.parallel.parallel_map` by the load harness and the
    equivalence tests to compute direct baselines at scale with the
    engine's deterministic merge-by-index.
    """
    req, machine_size, executor = item
    assert isinstance(req, QueryRequest)
    return direct_response(req, machine_size=machine_size,
                           executor=executor)


class ShardPools:
    """One single-worker executor per shard, restartable after faults.

    ``mode`` is ``"thread"`` (in-process; inherits the ambient executor
    and caches — the test/default mode) or ``"process"`` (isolation;
    worker death surfaces as :class:`concurrent.futures.BrokenExecutor`
    and :meth:`restart` replaces the pool).  Pools are created lazily so
    a service with idle shards spawns nothing for them.
    """

    def __init__(self, n_shards: int, mode: str = "thread") -> None:
        if mode not in WORKER_MODES:
            raise ValueError(f"unknown worker mode {mode!r}; "
                             f"have {WORKER_MODES}")
        self.n_shards = max(1, int(n_shards))
        self.mode = mode
        self._pools: list[Executor | None] = [None] * self.n_shards
        self.restarts = 0

    def _make_pool(self) -> Executor:
        if self.mode == "process":
            return ProcessPoolExecutor(max_workers=1)
        return ThreadPoolExecutor(max_workers=1,
                                  thread_name_prefix="repro-service")

    def pool(self, shard: int) -> Executor:
        pool = self._pools[shard]
        if pool is None:
            pool = self._pools[shard] = self._make_pool()
        return pool

    def restart(self, shard: int) -> None:
        """Replace a (possibly broken) shard pool with a fresh one."""
        pool = self._pools[shard]
        self._pools[shard] = None
        self.restarts += 1
        _RESTARTS.inc()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        for i, pool in enumerate(self._pools):
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
                self._pools[i] = None
