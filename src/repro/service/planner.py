"""The batching planner: pending requests -> deterministic batch units.

Compatible queries — same family, algorithm, machine model, and run
parameters, i.e. the same :func:`repro.service.model.run_key` — collapse
into one *batch unit* backed by a single simulated run.  Planning is a
pure function of the pending list's arrival order:

* units are emitted in first-arrival order of their run key, and waiters
  inside a unit keep arrival order — the same merge-by-index discipline
  as :mod:`repro.parallel` (results reattach to requests by position,
  never by completion order);
* duplicate requests inside a unit (identical full request key) are
  *dedupe hits*: they ride the unit without widening it;
* ``max_batch`` splits oversized units so one popular family cannot
  head-of-line-block a flush;
* ``batching=False`` degrades to one unit per request (no sharing, no
  dedupe) — the unbatched reference the property tests compare against.

The planner never runs driver code; it only groups and keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .model import QueryRequest, run_key, shard_of

__all__ = ["BatchUnit", "plan_batches"]


@dataclass
class BatchUnit:
    """One simulated run and the pending requests it will answer."""

    key: tuple
    shard: int
    algorithm: str
    waiters: list[Any] = field(default_factory=list)  # pendings, arrival order
    dedup_hits: int = 0
    #: Batch correlation id, minted by the server at dispatch time and
    #: propagated into events, worker payloads, and the batch span.
    bid: str = ""
    #: Distinct full request keys seen, for dedupe accounting.
    _seen: set[tuple] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.waiters)

    def add(self, pending: Any) -> None:
        rk = pending.request.key()
        if rk in self._seen:
            self.dedup_hits += 1
        else:
            self._seen.add(rk)
        self.waiters.append(pending)


def plan_batches(pendings: Iterable[Any], *, machine_size: int,
                 executor: str | None, n_shards: int,
                 batching: bool = True,
                 max_batch: int = 64) -> list[BatchUnit]:
    """Group pending requests into :class:`BatchUnit` lists.

    ``pendings`` is an iterable of objects with a ``.request``
    :class:`QueryRequest` attribute, in arrival order.  The plan is a
    deterministic function of that order and the configuration — no
    clocks, no randomness — so replaying the same arrivals plans the same
    batches.
    """
    max_batch = max(1, int(max_batch))
    units: list[BatchUnit] = []
    open_units: dict[tuple, BatchUnit] = {}
    for pending in pendings:
        req: QueryRequest = pending.request
        key = run_key(req, machine_size, executor)
        unit = open_units.get(key) if batching else None
        if unit is None or unit.size >= max_batch:
            unit = BatchUnit(key=key, shard=shard_of(key, n_shards),
                             algorithm=req.algorithm)
            units.append(unit)
            if batching:
                open_units[key] = unit
        unit.add(pending)
    return units
