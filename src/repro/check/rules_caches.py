"""RPR004 — bounded, clearable caches.

Cross-instance memos (`_CHARGE_CACHE`, `_PLAN_CACHE`, ...) are process
globals by design; the price of that design is two obligations, enforced
here for every module-level dict that functions mutate at runtime:

* **bounded** — the module must guard insertions with a ``len(...)``
  comparison against a cap (the drop-everything-on-overflow idiom of
  ``machines/machine.py``), so adversarial sweeps cannot grow a memo
  without limit;
* **clearable** — some function in the module must call ``.clear()`` on
  it, reachable from :func:`repro.machines.clear_caches`, so the test
  suite can isolate tests (``tests/conftest.py``) and a stale entry
  fails the test that created it.

Unbounded ``functools.lru_cache(maxsize=None)`` / ``functools.cache``
decorators are flagged unconditionally.  Import-time registries that
never grow per-call are not caches — suppress them with a reasoned
``# repro: noqa RPR004`` on the definition line.
"""

from __future__ import annotations

import ast

from .rules import FileContext, Rule, register

_DICT_FACTORIES = ("dict", "collections.defaultdict", "defaultdict",
                   "collections.OrderedDict", "OrderedDict")
_MUTATORS = ("setdefault", "update", "__setitem__")


@register
class BoundedCaches(Rule):
    id = "RPR004"
    name = "bounded-caches"
    summary = ("module-level dict mutated at runtime without a size cap "
               "or without a .clear() path; unbounded lru_cache")
    rationale = ("process-wide memos must be bounded (adversarial sweeps) "
                 "and clearable (test isolation via "
                 "repro.machines.clear_caches)")

    def check(self, ctx: FileContext) -> None:
        self._check_lru(ctx)
        for name, node in _module_dicts(ctx):
            if not _mutated_in_function(ctx, name):
                continue
            problems = []
            if not _has_cap_guard(ctx, name):
                problems.append("no len() cap guard bounds it")
            if not _has_clear_call(ctx, name):
                problems.append("no function clears it")
            if problems:
                ctx.report(node, f"module-level dict {name} is mutated at "
                                 f"runtime but {' and '.join(problems)}")

    def _check_lru(self, ctx: FileContext) -> None:
        for fn in ctx.functions():
            for dec in fn.decorator_list:
                if ctx.dotted(dec) == "functools.cache":
                    ctx.report(dec, "unbounded functools.cache; use a "
                                    "bounded lru_cache with a clear path")
                elif isinstance(dec, ast.Call) and \
                        ctx.dotted(dec.func) == "functools.lru_cache" and \
                        _lru_maxsize_none(dec):
                    ctx.report(dec, "lru_cache(maxsize=None) is unbounded; "
                                    "give it a size and a clear path")


def _lru_maxsize_none(dec: ast.Call) -> bool:
    if dec.args and isinstance(dec.args[0], ast.Constant):
        return dec.args[0].value is None
    return any(kw.arg == "maxsize" and isinstance(kw.value, ast.Constant)
               and kw.value.value is None for kw in dec.keywords)


def _module_dicts(ctx: FileContext):
    """Yield ``(name, node)`` for module-level dict-valued assignments."""
    for node in ctx.tree.body:
        target = None
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            target, value = node.targets[0].id, node.value
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and node.value is not None:
            target, value = node.target.id, node.value
        if target is None:
            continue
        if isinstance(value, ast.Dict):
            yield target, node
        elif isinstance(value, ast.Call) and \
                ctx.dotted(value.func) in _DICT_FACTORIES:
            yield target, node


def _mutated_in_function(ctx: FileContext, name: str) -> bool:
    for node in ast.walk(ctx.tree):
        if ctx.enclosing_function(node) is None:
            continue
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if isinstance(t, ast.Subscript) and \
                        isinstance(t.value, ast.Name) and t.value.id == name:
                    return True
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == name and \
                node.func.attr in _MUTATORS:
            return True
    return False


def _has_cap_guard(ctx: FileContext, name: str) -> bool:
    """A ``len(NAME) <op> <cap>`` comparison anywhere in the module."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        for expr in [node.left, *node.comparators]:
            if isinstance(expr, ast.Call) and \
                    isinstance(expr.func, ast.Name) and \
                    expr.func.id == "len" and expr.args and \
                    isinstance(expr.args[0], ast.Name) and \
                    expr.args[0].id == name:
                return True
    return False


def _has_clear_call(ctx: FileContext, name: str) -> bool:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "clear" and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == name:
            return True
    return False
