"""RPR001 — two-clock purity.

Simulated parallel time is a pure function of the operation sequence; the
host wall clock may only be read by the modules whose *job* is wall-clock
(``machines/metrics.py`` wall accounting, ``trace/tracer.py`` spans,
``trace/provenance.py`` manifests, ``parallel.py``, ``benchmarks/``).  A
stray ``perf_counter()`` anywhere else is how wall time leaks into
simulated accounting and silently corrupts the Theta-conformance goldens.

Flags calls resolving to a banned clock name, and ``from``-imports of
banned names (the contraband entering the module).  Suppressing the
import line with a reasoned ``# repro: noqa RPR001`` also covers calls of
that imported name.
"""

from __future__ import annotations

import ast

from .rules import FileContext, Rule, register

#: Canonical dotted names that read the host clock.
BANNED_CLOCKS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.localtime", "time.gmtime", "time.ctime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``from``-import suffixes that resolve to a banned clock, e.g.
#: ``from time import perf_counter`` or ``from datetime import datetime``.
_BANNED_FROM = {tuple(name.rsplit(".", 1)) for name in BANNED_CLOCKS}
_BANNED_TYPES = {"datetime", "date"}  # the types carry .now()/.today()


@register
class TwoClockPurity(Rule):
    id = "RPR001"
    name = "two-clock-purity"
    summary = ("wall-clock reads (time.*, datetime.now, perf_counter) "
               "outside the allowlisted wall-clock modules")
    rationale = ("simulated time must be a pure function of the operation "
                 "sequence; wall-clock belongs only to the metrics/trace/"
                 "parallel layers (docs/cost_model.md, two-clock contract)")

    def check(self, ctx: FileContext) -> None:
        if ctx.policy.is_wallclock_module(ctx.rel):
            return
        imported_clocks = self._flag_imports(ctx)
        for node, name in ctx.calls():
            if name in BANNED_CLOCKS:
                # Calls through a from-imported name are covered by the
                # finding (and any suppression) on the import line itself.
                if _root_name(node.func) in imported_clocks:
                    continue
                ctx.report(node, f"wall-clock read {name}() outside the "
                                 f"wall-clock allowlist")

    def _flag_imports(self, ctx: FileContext) -> set[str]:
        """Flag banned from-imports; return the local names they bind."""
        bound: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or node.level:
                continue
            for alias in node.names:
                full = (node.module, alias.name)
                banned_type = (node.module == "datetime"
                               and alias.name in _BANNED_TYPES)
                if full in _BANNED_FROM or banned_type:
                    bound.add(alias.asname or alias.name)
                    ctx.report(node, f"import of wall-clock name "
                                     f"{node.module}.{alias.name} outside "
                                     f"the wall-clock allowlist")
        return bound


def _root_name(node: ast.AST) -> str | None:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None
