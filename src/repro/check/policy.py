"""Path policy: which invariants bind where in the tree.

Every rule scopes itself through a :class:`CheckPolicy` instead of
hard-coding paths, so the fixture tests (and any future monorepo layout)
can run the same rules against a different root.  Paths are POSIX-style
and relative to the checked root (``src/repro`` in the tier-1 gate); an
entry ending in ``/`` matches the whole subtree.

The allowlists are the *reasons* half of each rule: a module listed here
is exempt by design, with the rationale recorded next to it, which is the
difference between an allowlist and a blind spot.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _match(rel: str, patterns: tuple[str, ...]) -> bool:
    for pat in patterns:
        if pat.endswith("/"):
            if rel.startswith(pat) or f"/{pat}" in f"/{rel}":
                return True
        elif rel == pat or rel.endswith(f"/{pat}"):
            return True
    return False


@dataclass(frozen=True)
class CheckPolicy:
    """Scopes and exemptions for the built-in RPR rules."""

    #: RPR001 — modules allowed to touch the host wall clock, and why:
    #:   machines/metrics.py   wall_time / wall_phases accounting itself
    #:   trace/tracer.py       span wall-clock capture (the other clock)
    #:   trace/provenance.py   run manifests timestamp by design
    #:   parallel.py           the process-pool engine (host execution)
    #:   service/              request latency / worker wall accounting
    #:                         (serving measures the host by design)
    #:   obs/                  telemetry summarises host-side values; the
    #:                         tighter RPR009 clock discipline (interval
    #:                         clocks only) binds there instead
    wallclock_modules: tuple[str, ...] = (
        "machines/metrics.py",
        "trace/tracer.py",
        "trace/provenance.py",
        "parallel.py",
        "service/",
        "obs/",
        "benchmarks/",
    )

    #: RPR002 — modules allowed to read ``os.environ``: CLI entry points
    #: and the benchmark harness (configuration enters a run exactly once,
    #: at the edge, never inside an algorithm).
    entrypoint_modules: tuple[str, ...] = (
        "__main__.py",
        "benchmarks/",
    )

    #: RPR002 — subtrees whose float accumulation must never be fed by
    #: set iteration (simulated charges are order-sensitive float sums).
    accounting_paths: tuple[str, ...] = (
        "machines/",
        "ops/",
        "core/",
    )

    #: RPR003 — subtrees where PE-data movement must charge simulated
    #: time.  metrics.py/topology.py/indexing.py are the charge API and
    #: pure index math; routing modules estimate round counts without
    #: holding PE data, so they are out of scope by design.
    charge_scope: tuple[str, ...] = (
        "ops/",
        "machines/machine.py",
        "machines/micro.py",
        "machines/micro_cube.py",
    )

    #: RPR003 — callable names that count as "going through the charge
    #: API".  Attribute or bare calls to any of these satisfy the rule.
    charge_calls: tuple[str, ...] = (
        "charge_local", "charge_comm", "charge_comm_total",
        "local", "exchange", "exchange_sweep", "doubling_sweep",
        "monotone_route", "long_shift", "execute_plan",
    )

    #: RPR006 — the vectorized plan executor: past its lowering boundary
    #: everything must stay whole-array numeric code.
    vexec_modules: tuple[str, ...] = (
        "ops/vexec.py",
    )

    #: RPR006 — the only charge calls the vectorized executor may make:
    #: the fused per-operation vectors shared with the compiled executor.
    #: Any other charge_calls name inside vexec is a per-round charge,
    #: which would let simulated time drift between executors.
    vexec_fused_charges: tuple[str, ...] = (
        "exchange_sweep", "doubling_sweep", "long_shift",
    )

    #: RPR005 — the parallel-engine module itself (its internal
    #: ``pool.submit`` plumbing is the implementation, not a client).
    parallel_engine_modules: tuple[str, ...] = (
        "parallel.py",
    )

    #: Names whose call submits work to a process pool (clients of the
    #: campaign engine) — the sites RPR005 audits.
    parallel_submit_calls: tuple[str, ...] = (
        "parallel_map",
        "submit",
    )

    #: RPR007 — the asyncio serving layer: its event loop must never run
    #: a simulated run; drivers execute in shard worker pools.
    service_modules: tuple[str, ...] = (
        "service/",
    )

    #: RPR007 — callable names that block for a whole simulated run (the
    #: drivers, the batch/worker entry points, the campaign engine, ops
    #: sorts).  Calling any of these inside an ``async def`` in a service
    #: module is a finding; passing them *uncalled* to ``pool.submit`` is
    #: the sanctioned pattern.
    service_blocking_calls: tuple[str, ...] = (
        "envelope", "envelope_serial",
        "hull_membership_intervals", "steady_hull",
        "run_driver", "direct_response", "execute_batch", "direct_item",
        "run_instance", "campaign", "parallel_map", "bitonic_sort",
    )

    #: RPR008 — the incremental update engine: certificate event queues
    #: must pop in an order that is a pure function of the geometry
    #: (failure time + canonical key), never of Python object identity,
    #: string-hash randomization, or heap insertion order.
    incremental_modules: tuple[str, ...] = (
        "incremental/",
    )

    #: RPR009 — the operational-telemetry package: always-on buffers must
    #: append behind a visible ``len()`` cap guard, and only interval
    #: clocks may be read (calendar timestamps belong to
    #: ``trace/provenance.py``, stamped once per artifact).
    obs_modules: tuple[str, ...] = (
        "obs/",
    )

    #: RPR009 — the only wall-clock reads obs code may make.  Interval
    #: measurement is telemetry's job; anything else (``time.time``,
    #: ``datetime.now``) would put wall timestamps into event streams
    #: whose ordering contract is the sequence number.
    obs_clock_allow: tuple[str, ...] = (
        "time.perf_counter",
        "time.perf_counter_ns",
    )

    #: RPR009 — call names that emit structured telemetry records.  Their
    #: arguments must stay structured fields; an f-string argument is a
    #: pre-formatted message that no consumer can filter on.  Checked in
    #: obs modules and at the service's emission sites.
    obs_emit_calls: tuple[str, ...] = (
        "emit", "record_event", "record_span",
    )

    #: Taint flow (RPR001/RPR002 dataflow upgrades) — call names whose
    #: argument bytes become response/artifact bytes.  A host-clock or
    #: RNG value reaching one of these is a finding no matter how many
    #: function boundaries it crossed.  Dotted names match exactly;
    #: bare names match the call's leaf.
    taint_payload_sinks: tuple[str, ...] = (
        "json.dumps", "json.dump",
        "response_payload", "payload_bytes", "direct_response",
        "encode_envelope", "envelope_bytes", "canonical_bytes",
    )

    #: Taint flow — modules whose sinks are exempt, and why:
    #:   trace/       spans/manifests carry wall-clock fields by design
    #:   obs/         telemetry serialises host-side measurements
    #:   benchmarks/  benchmark artifacts record wall time on purpose
    #:   machines/metrics.py  the wall-accounting layer itself
    #:   parallel.py  the host-execution engine
    #:   examples/    narrative scripts, not library surface
    taint_exempt_modules: tuple[str, ...] = (
        "trace/",
        "obs/",
        "benchmarks/",
        "machines/metrics.py",
        "parallel.py",
        "examples/",
    )

    #: RPR010/RPR011 — modules whose ``async def`` bodies share state
    #: across task interleavings (the asyncio serving layer and the
    #: incremental engine it drives).
    async_state_modules: tuple[str, ...] = (
        "service/",
        "incremental/",
    )

    #: RPR010/RPR011 — substrings marking an ``async with`` context
    #: expression as a lock (case-insensitive, matched on the leaf name).
    lock_name_hints: tuple[str, ...] = (
        "lock", "mutex", "sem",
    )

    #: RPR011 — method names that *read* a cache/store (the "check" half
    #: of check-then-act).  Membership tests (``in``/``not in``) on a
    #: shared chain count as reads too.
    cache_read_calls: tuple[str, ...] = (
        "get", "peek", "take_cached",
    )

    #: RPR012 — worker-process entry points: functions with these leaf
    #: names (plus every callable passed to a pool submit) execute in
    #: forked workers, so module globals they mutate never reach the
    #: parent.
    cross_process_entries: tuple[str, ...] = (
        "execute_batch", "direct_item",
    )

    #: RPR012 — modules whose globals the rule watches (the serving
    #: layer, where parent and worker share source but not memory).
    cross_process_state_modules: tuple[str, ...] = (
        "service/",
    )

    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def is_wallclock_module(self, rel: str) -> bool:
        return _match(rel, self.wallclock_modules)

    def is_entrypoint(self, rel: str) -> bool:
        return _match(rel, self.entrypoint_modules)

    def in_accounting_path(self, rel: str) -> bool:
        return _match(rel, self.accounting_paths)

    def in_charge_scope(self, rel: str) -> bool:
        return _match(rel, self.charge_scope)

    def is_parallel_engine(self, rel: str) -> bool:
        return _match(rel, self.parallel_engine_modules)

    def is_vexec_module(self, rel: str) -> bool:
        return _match(rel, self.vexec_modules)

    def is_service_module(self, rel: str) -> bool:
        return _match(rel, self.service_modules)

    def is_incremental_module(self, rel: str) -> bool:
        return _match(rel, self.incremental_modules)

    def is_obs_module(self, rel: str) -> bool:
        return _match(rel, self.obs_modules)

    def is_taint_exempt(self, rel: str) -> bool:
        return _match(rel, self.taint_exempt_modules)

    def is_async_state_module(self, rel: str) -> bool:
        return _match(rel, self.async_state_modules)

    def is_cross_process_state_module(self, rel: str) -> bool:
        return _match(rel, self.cross_process_state_modules)


DEFAULT_POLICY = CheckPolicy()
