"""RPR006 — vectorized-executor hygiene.

The whole point of :mod:`repro.ops.vexec` is that, past the key-lowering
boundary, execution is numeric whole-array code: precompiled index
gathers, vectorized comparators, fused ``np.where`` writebacks, charges
paid through the plans' fused vectors.  The failure modes are all quiet
regressions — an object-dtype array or a ``range()`` element loop slipped
into an executor re-creates exactly the per-pair python path the module
replaces (the wall-clock rots, every value test stays green), and a
per-round charge call de-fuses the charge vector (simulated time drifts
from the other two executors).

The rule therefore flags, inside the vexec module only
(:attr:`repro.check.policy.CheckPolicy.vexec_modules`):

* **object-dtype construction** — ``dtype=object`` keywords,
  ``astype(object)``, and ``np.frompyfunc``/``np.vectorize`` lifts;
* **python element loops** — ``for ... in range(...)`` statements, the
  per-slot idiom (whole-array iteration over round schedules or column
  lists is the vectorized idiom and stays legal);
* **per-round charge calls** — any charge API outside the fused set
  (:attr:`~repro.check.policy.CheckPolicy.vexec_fused_charges`).

Functions named ``_lower*`` / ``_rebox*`` are the declared
python-object boundary (they may walk elements once per operation and
build object arrays) and are exempt from the first two checks.
"""

from __future__ import annotations

import ast

from .rules import FileContext, Rule, register

#: The declared object/python boundary of the vexec module.
_BOUNDARY_PREFIXES = ("_lower", "_rebox")

#: Object-lifting factories that reintroduce per-element python calls.
_LIFT_CALLS = {"numpy.frompyfunc", "numpy.vectorize"}


@register
class VexecHygiene(Rule):
    id = "RPR006"
    name = "vexec-hygiene"
    summary = ("object-dtype arrays, python element loops, or unfused "
               "charge calls inside the vectorized executor")
    rationale = ("the vectorized executor exists to replace per-pair "
                 "python loops; an object array or range() loop past the "
                 "lowering boundary silently restores them, and a "
                 "per-round charge call de-fuses the plan charge vectors "
                 "the three-executor contract relies on "
                 "(docs/cost_model.md)")

    def check(self, ctx: FileContext) -> None:
        if not ctx.policy.is_vexec_module(ctx.rel):
            return
        fused = set(ctx.policy.vexec_fused_charges)
        for node, name in ctx.calls():
            leaf = name.rsplit(".", 1)[-1]
            if name in _LIFT_CALLS and not _in_boundary(ctx, node):
                ctx.report(node, f"{name}() lifts a python callable over "
                                 f"arrays — per-element execution in the "
                                 f"vectorized executor")
            elif leaf == "astype" and _mentions_object(node.args):
                if not _in_boundary(ctx, node):
                    ctx.report(node, "astype(object) in the vectorized "
                                     "executor (lowering/rebox helpers "
                                     "are the only legal boundary)")
            elif leaf in ctx.policy.charge_calls and leaf not in fused:
                ctx.report(node, f"per-round charge call {leaf}(); vexec "
                                 f"must charge through the fused plan "
                                 f"vectors ({', '.join(sorted(fused))})")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.keyword) and node.arg == "dtype" \
                    and _is_object_expr(node.value) \
                    and not _in_boundary(ctx, node.value):
                ctx.report(node.value, "dtype=object array in the "
                                       "vectorized executor (only "
                                       "_lower*/_rebox* may box objects)")
            elif isinstance(node, ast.For) and _is_range_call(node.iter) \
                    and not _in_boundary(ctx, node):
                ctx.report(node, "for-over-range() element loop in the "
                                 "vectorized executor; use whole-array "
                                 "gathers over the plan's index arrays")


def _in_boundary(ctx: FileContext, node: ast.AST) -> bool:
    fn = ctx.enclosing_function(node)
    while fn is not None:
        name = getattr(fn, "name", "")
        if name.startswith(_BOUNDARY_PREFIXES):
            return True
        fn = ctx.enclosing_function(fn)
    return False


def _is_object_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "object"
    if isinstance(node, ast.Attribute):
        return node.attr in ("object_", "object")
    return False


def _mentions_object(args: list) -> bool:
    return any(_is_object_expr(a) for a in args)


def _is_range_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "range")
