"""The finding data model and its text/JSON renderings.

A :class:`Finding` is one rule violation anchored to a file position.  Its
:meth:`Finding.fingerprint` deliberately excludes the line *number* (it
hashes the rule, the path and the stripped source line text plus an
occurrence index instead), so baselines survive unrelated edits that only
shift code up or down a file.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``.

    ``suppressed_by`` records why a finding does not count against the
    exit code: ``"noqa"`` (an inline ``# repro: noqa`` with a reason) or
    ``"baseline"`` (a grandfathered entry in the baseline file).  The
    finding is still carried in reports so suppressions stay visible.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    source: str = field(default="", compare=False)
    suppressed_by: str | None = field(default=None, compare=False)
    suppress_reason: str | None = field(default=None, compare=False)

    @property
    def active(self) -> bool:
        """Whether the finding counts against the exit code."""
        return self.suppressed_by is None

    def fingerprint(self, occurrence: int = 0) -> str:
        """Line-number-independent identity used by baseline files."""
        return f"{self.rule}:{self.path}:{self.source.strip()}:{occurrence}"

    def render(self) -> str:
        tail = ""
        if self.suppressed_by:
            reason = f": {self.suppress_reason}" if self.suppress_reason else ""
            tail = f"  [suppressed by {self.suppressed_by}{reason}]"
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}{tail}")

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "source": self.source,
            "suppressed_by": self.suppressed_by,
            "suppress_reason": self.suppress_reason,
        }


def assign_fingerprints(findings) -> list[tuple["Finding", str]]:
    """Pair each finding with its occurrence-disambiguated fingerprint.

    Two findings of the same rule on byte-identical source lines in one
    file get occurrence indices 0, 1, ... in position order, so baseline
    entries stay unambiguous.
    """
    seen: dict[str, int] = {}
    out: list[tuple[Finding, str]] = []
    for f in sorted(findings):
        base = f"{f.rule}:{f.path}:{f.source.strip()}"
        occ = seen.get(base, 0)
        seen[base] = occ + 1
        out.append((f, f.fingerprint(occ)))
    return out
