"""RPR008 — event-queue determinism of the incremental engine.

The incremental update engine (:mod:`repro.incremental`) owes its
byte-parity contract to one discipline: certificate events pop in an
order that is a **pure function of the geometry** — ``(failure_time,
canonical key)`` — never of anything the Python runtime made up.  Three
runtime artefacts silently break that and only show up as one-in-a-
thousand parity flakes, which is why a static rule holds the line:

* ``id(obj)`` — object identity varies per process and per allocation;
  an id anywhere near a heap or sort key makes pop order a function of
  the allocator;
* ``hash(obj)`` — string hashing is randomized per process
  (``PYTHONHASHSEED``), and hashing an unordered container is
  order-dependent on top of that;
* **bare heap pushes** — ``heappush(q, obj)`` without an explicit
  ``(failure_time, key, ...)`` tuple literal falls back to object
  comparison, and ties then resolve by heap insertion order (or raise
  on unorderable payloads — equally non-canonical).

The rule flags, inside incremental modules only
(:attr:`~repro.check.policy.CheckPolicy.incremental_modules`): every
``id()`` / ``hash()`` call, and every ``heappush`` / ``heappushpop`` /
``heapreplace`` whose pushed item is not an explicit tuple literal of
at least two elements.  The sanctioned pattern is the one
:class:`repro.incremental.events.CertificateQueue` uses — push
``(failure_time, canonical_key, payload)`` tuples and *reject*
duplicate ``(failure_time, key)`` prefixes outright.
"""

from __future__ import annotations

import ast

from .rules import FileContext, Rule, register

#: Builtins whose value depends on the runtime, not the geometry.
_RUNTIME_KEYS = {"id", "hash"}

#: heapq entry points that insert an item whose ordering matters.
_HEAP_PUSHES = {"heappush", "heappushpop", "heapreplace"}


@register
class IncrementalQueueDeterminism(Rule):
    id = "RPR008"
    name = "incremental-queue-determinism"
    summary = ("event-queue or sort ordering in the incremental engine "
               "depends on id()/hash() or on heap insertion order")
    rationale = ("incremental updates are byte-identical to full "
                 "recomputes only while certificate events pop by "
                 "(failure_time, canonical key); id() varies per "
                 "allocation, hash() per process, and a bare heap push "
                 "resolves ties by insertion order — each turns parity "
                 "into a one-in-a-thousand flake (docs/incremental.md)")

    def check(self, ctx: FileContext) -> None:
        if not ctx.policy.is_incremental_module(ctx.rel):
            return
        for node, name in ctx.calls():
            leaf = name.rsplit(".", 1)[-1]
            if name in _RUNTIME_KEYS:
                ctx.report(node, f"{name}() is runtime-dependent (per-"
                                 f"allocation / per-process); event and "
                                 f"sort keys must be pure functions of "
                                 f"the geometry")
            elif leaf in _HEAP_PUSHES and not _pushes_key_tuple(node):
                ctx.report(node, f"{leaf}() without an explicit "
                                 f"(failure_time, canonical_key, ...) "
                                 f"tuple; bare items make pop order "
                                 f"depend on heap insertion order")


def _pushes_key_tuple(call: ast.Call) -> bool:
    """True when the pushed item is an explicit >=2-tuple literal.

    ``heappush(q, item)`` / ``heappushpop(q, item)`` / ``heapreplace(q,
    item)`` all take the item as the second positional argument.  Only a
    syntactic tuple of at least (time, key) proves the ordering was
    chosen; anything else — a name, a call result, a 1-tuple — hides
    the comparison the heap will actually perform.
    """
    if len(call.args) < 2:
        return False
    item = call.args[1]
    return isinstance(item, ast.Tuple) and len(item.elts) >= 2
