"""Inline suppression comments: ``# repro: noqa RPRxxx -- reason``.

A suppression names the rule(s) it silences and *must* carry a reason
after ``--`` — an unexplained suppression is itself a finding (RPR000),
and the attempted suppression does not apply.  Examples::

    t0 = perf_counter()  # repro: noqa RPR001 -- compile-time is wall-side
    CACHE = {}  # repro: noqa RPR004 -- import-time registry, not a cache

Suppressing the ``from``-import of a banned wall-clock name also covers
the calls of that name in the same module (the contraband entered with a
declared reason); everything else is strictly per-line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Rule id of the checker's own meta-finding for malformed suppressions.
MALFORMED_RULE = "RPR000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b(?P<rules>[^#]*?)(?:--(?P<reason>.*))?$"
)
_RULE_ID_RE = re.compile(r"RPR\d{3}")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str | None

    def covers(self, rule: str) -> bool:
        return not self.rules or rule in self.rules

    @property
    def valid(self) -> bool:
        return bool(self.reason and self.reason.strip())


def parse_suppressions(source_lines: list[str]) -> dict[int, Suppression]:
    """Map 1-based line numbers to the suppression declared on that line."""
    out: dict[int, Suppression] = {}
    for i, text in enumerate(source_lines, start=1):
        m = _NOQA_RE.search(text)
        if not m:
            continue
        rules = tuple(_RULE_ID_RE.findall(m.group("rules") or ""))
        reason = m.group("reason")
        out[i] = Suppression(
            line=i,
            rules=rules,
            reason=reason.strip() if reason else None,
        )
    return out
