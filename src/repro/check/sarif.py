"""SARIF 2.1.0 rendering of check reports (``--format sarif``).

One run per report, findings as ``results``: CI annotators (GitHub code
scanning, VS Code SARIF viewers) consume this directly.  Suppressed
findings are *carried*, not dropped — a result with a non-empty
``suppressions`` array renders as suppressed, keeping the noqa/baseline
channels visible in the same place the active findings are.
"""

from __future__ import annotations

from .flow import PROGRAM_RULES
from .rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Finding channel -> SARIF suppression kind.  ``noqa`` lives in the
#: source; the baseline file is external bookkeeping.
_SUPPRESSION_KIND = {"noqa": "inSource", "baseline": "external"}


def _rule_index() -> dict[str, dict]:
    out: dict[str, dict] = {}
    for rid, rule in {**PROGRAM_RULES, **RULES}.items():
        out[rid] = rule.describe()
    return out


def _tool_rules(used: set[str]) -> list[dict]:
    index = _rule_index()
    rules = []
    for rid in sorted(used):
        meta = index.get(rid, {"name": rid, "summary": "", "rationale": ""})
        entry = {
            "id": rid,
            "name": meta.get("name", rid),
            "shortDescription": {"text": meta.get("summary", "")},
        }
        if meta.get("rationale"):
            entry["fullDescription"] = {"text": meta["rationale"]}
        rules.append(entry)
    return rules


def _result(finding) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
    if finding.source:
        region = result["locations"][0]["physicalLocation"]["region"]
        region["snippet"] = {"text": finding.source}
    if finding.suppressed_by:
        suppression = {
            "kind": _SUPPRESSION_KIND.get(finding.suppressed_by,
                                          "external"),
        }
        if finding.suppress_reason:
            suppression["justification"] = finding.suppress_reason
        result["suppressions"] = [suppression]
    else:
        result["suppressions"] = []
    return result


def to_sarif(reports) -> dict:
    """A SARIF 2.1.0 log document covering ``reports`` (one run each)."""
    runs = []
    for report in reports:
        findings = sorted(report.findings)
        used = {f.rule for f in findings}
        runs.append({
            "tool": {
                "driver": {
                    "name": "repro.check",
                    "informationUri":
                        "docs/static_analysis.md",
                    "rules": _tool_rules(used),
                },
            },
            "columnKind": "utf16CodeUnits",
            "originalUriBaseIds": {
                "SRCROOT": {"uri": f"{report.root}/"},
            },
            "results": [_result(f) for f in findings],
            "invocations": [{
                "executionSuccessful": report.ok,
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": runs,
    }
