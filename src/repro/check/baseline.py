"""Baseline files: grandfathered findings with mandatory reasons.

A baseline is a committed JSON document listing findings that are known,
explained, and temporarily tolerated — the escape hatch that lets the
tier-1 gate turn on *today* while real fixes land incrementally.  Every
entry carries a fingerprint (line-number independent, see
:meth:`repro.check.findings.Finding.fingerprint`) and a non-empty reason;
an entry without a reason invalidates the whole file (exit 2), because an
unexplained exemption is indistinguishable from a blind spot.

Stale entries (fingerprints matching nothing) are reported so baselines
shrink monotonically instead of accreting.
"""

from __future__ import annotations

import json
from pathlib import Path

from .findings import Finding, assign_fingerprints

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Malformed baseline document (bad schema or missing reasons)."""


def load_baseline(path) -> dict[str, str]:
    """Read ``{fingerprint: reason}`` from a baseline file."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise BaselineError(f"{path}: not a version-{BASELINE_VERSION} "
                            f"baseline document")
    entries = doc.get("entries", [])
    out: dict[str, str] = {}
    for e in entries:
        fp = e.get("fingerprint")
        reason = (e.get("reason") or "").strip()
        if not fp or not reason:
            raise BaselineError(f"{path}: baseline entry {fp!r} needs a "
                                f"non-empty reason")
        out[fp] = reason
    return out


def apply_baseline(findings: list[Finding],
                   baseline: dict[str, str]) -> tuple[list[Finding], list[str]]:
    """Mark baselined findings suppressed; return (findings, stale keys)."""
    matched: set[str] = set()
    out: list[Finding] = []
    for f, fp in assign_fingerprints(findings):
        if f.active and fp in baseline:
            matched.add(fp)
            f = Finding(path=f.path, line=f.line, col=f.col, rule=f.rule,
                        message=f.message, source=f.source,
                        suppressed_by="baseline",
                        suppress_reason=baseline[fp])
        out.append(f)
    stale = sorted(set(baseline) - matched)
    return out, stale


def write_baseline(path, findings: list[Finding],
                   reason: str = "grandfathered by --write-baseline") -> int:
    """Serialize the active findings as a fresh baseline; returns count."""
    entries = [
        {"fingerprint": fp, "rule": f.rule, "path": f.path, "reason": reason}
        for f, fp in assign_fingerprints(findings) if f.active
    ]
    doc = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return len(entries)
