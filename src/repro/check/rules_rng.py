"""RPR002 — determinism.

Three leak paths into nondeterminism, all statically visible:

* **module-global RNG state** — calls into ``random.*`` or legacy
  ``numpy.random.*`` draw from process-wide state seeded who-knows-where.
  Every draw must come from an explicitly seeded generator
  (``np.random.default_rng(seed)`` / ``random.Random(seed)``).
* **environment reads** — ``os.environ`` / ``os.getenv`` outside CLI
  entry points make library behaviour depend on ambient configuration;
  configuration enters a run once, at the edge.
* **set-order float accumulation** — iterating a ``set`` feeds hash
  order into an order-sensitive float sum; in the accounting subtrees
  that changes simulated charges between hash seeds.
"""

from __future__ import annotations

import ast

from .rules import FileContext, Rule, register

#: numpy.random attributes that are *constructors of seeded state* (or
#: types in annotations) rather than draws from the legacy global RNG.
NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: random-module names that construct an instance instead of touching the
#: module-global Mersenne Twister.  (``SystemRandom`` stays banned: it is
#: nondeterministic by construction.)
RANDOM_OK = frozenset({"Random"})

ENV_READS = frozenset({"os.getenv", "os.environ.get", "os.environ.items",
                       "os.environ.keys", "os.environ.values"})


@register
class Determinism(Rule):
    id = "RPR002"
    name = "determinism"
    summary = ("module-global RNG state, os.environ reads outside entry "
               "points, or set-order-fed float accumulation")
    rationale = ("every run must be a pure function of its seeds and "
                 "arguments — identical for every --jobs value and hash "
                 "seed (docs/verification.md determinism contract)")

    def check(self, ctx: FileContext) -> None:
        for node, name in ctx.calls():
            self._check_call(ctx, node, name)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Subscript):
                base = ctx.dotted(node.value)
                if base == "os.environ" and not ctx.policy.is_entrypoint(ctx.rel):
                    ctx.report(node, "os.environ read outside a CLI entry "
                                     "point")
        if ctx.policy.in_accounting_path(ctx.rel):
            self._check_set_accumulation(ctx)

    def _check_call(self, ctx: FileContext, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] not in RANDOM_OK:
                ctx.report(node, f"call to module-global RNG {name}(); use "
                                 f"a seeded random.Random instance")
        elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
            if parts[2] not in NP_RANDOM_OK:
                ctx.report(node, f"legacy global-state call {name}(); use "
                                 f"np.random.default_rng(seed)")
        elif name in ENV_READS and not ctx.policy.is_entrypoint(ctx.rel):
            ctx.report(node, f"environment read {name}() outside a CLI "
                             f"entry point")

    # -- set iteration feeding float accumulation -----------------------
    def _check_set_accumulation(self, ctx: FileContext) -> None:
        msg = ("iteration over a set feeding accumulation: set order is "
               "hash-seed dependent; sort or use a list/dict")
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.For) and _is_set_expr(ctx, node.iter)
                    and _accumulates(node)):
                ctx.report(node, msg)
            elif isinstance(node, ast.Call):
                # sum(f(x) for x in some_set) — order-sensitive reduction.
                name = ctx.dotted(node.func)
                if name not in ("sum", "math.fsum"):
                    continue
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)) \
                            and any(_is_set_expr(ctx, g.iter)
                                    for g in arg.generators):
                        ctx.report(node, msg)

    def describe(self) -> dict:
        d = super().describe()
        d["allowed_rng"] = sorted(NP_RANDOM_OK)
        return d


def _is_set_expr(ctx: FileContext, node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = ctx.dotted(node.func)
        return name in ("set", "frozenset")
    return False


def _accumulates(loop: ast.For) -> bool:
    """Whether the loop body contains an augmented accumulation."""
    for node in ast.walk(loop):
        if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)):
            return True
    return False
