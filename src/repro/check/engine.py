"""Walk a tree, run the rules, apply suppressions and baseline.

The engine is deliberately dumb: it parses every ``*.py`` under the root
with :mod:`ast`, hands each file to the registered rules, runs the
whole-program rules (:mod:`repro.check.flow`) over all files at once,
then filters the raw findings through the two suppression channels
(inline ``noqa`` comments, then the baseline file).  All policy lives in
:mod:`repro.check.policy`; all judgement lives in the rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from . import builtin  # noqa: F401  (registers the RPR rules on import)
from .baseline import apply_baseline
from .findings import Finding
from .flow import PROGRAM_RULES, build_program, run_program_rules
from .policy import DEFAULT_POLICY, CheckPolicy
from .rules import RULES, FileContext, run_rules
from .suppress import MALFORMED_RULE, parse_suppressions


@dataclass
class CheckReport:
    """The outcome of one checker run over a tree."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.active]

    @property
    def ok(self) -> bool:
        return not self.active and not self.parse_errors

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.active:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "root": self.root,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "stale_baseline": self.stale_baseline,
            "parse_errors": self.parse_errors,
            "rules": {rid: r.describe()
                      for rid, r in sorted({**RULES,
                                            **PROGRAM_RULES}.items())},
        }

    def render(self, *, show_suppressed: bool = False) -> str:
        lines = [f.render() for f in sorted(self.findings)
                 if f.active or show_suppressed]
        lines.extend(f"{self.root}: parse error: {e}"
                     for e in self.parse_errors)
        lines.extend(f"baseline: stale entry {fp}"
                     for fp in self.stale_baseline)
        counts = self.counts()
        total = sum(counts.values())
        if total:
            per_rule = ", ".join(f"{rid} x{n}"
                                 for rid, n in sorted(counts.items()))
            lines.append(f"{total} finding(s): {per_rule}")
        else:
            lines.append(f"clean: {self.files_checked} file(s), "
                         f"{len(self.suppressed)} suppression(s) in effect")
        return "\n".join(lines)


def iter_python_files(root: Path):
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        yield path


def package_base(root: Path) -> Path:
    """The directory finding paths are made relative to.

    Walks up through package directories (those holding ``__init__.py``)
    so ``src/repro/ops/plans.py``, ``src/repro`` and ``benchmarks/`` all
    yield policy-matchable paths like ``repro/ops/plans.py`` — the policy
    compares by suffix/substring, so the leading package name is inert.
    """
    start = root.parent if root.is_file() else root
    cur = start
    while (cur / "__init__.py").is_file() and cur.parent != cur:
        cur = cur.parent
    if cur == start and cur.parent != cur:
        # Not a package (benchmarks/, a fixtures dir): keep the directory
        # name itself in finding paths so policies can scope on it.
        cur = cur.parent
    return cur


def check_file(path: Path, rel: str, policy: CheckPolicy,
               select=None) -> list[Finding]:
    """Run the rules over one file and apply its inline suppressions."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    ctx = FileContext(rel=rel, source=source, tree=tree, policy=policy)
    raw = run_rules(ctx, select=select)
    return _apply_noqa(ctx, raw)


def _apply_noqa(ctx: FileContext, raw: list[Finding]) -> list[Finding]:
    suppressions = parse_suppressions(ctx.lines)
    out: list[Finding] = []
    flagged_bad: set[int] = set()
    for f in raw:
        sup = suppressions.get(f.line)
        if sup is not None and sup.covers(f.rule):
            if sup.valid:
                f = Finding(path=f.path, line=f.line, col=f.col, rule=f.rule,
                            message=f.message, source=f.source,
                            suppressed_by="noqa",
                            suppress_reason=sup.reason)
            elif f.line not in flagged_bad:
                flagged_bad.add(f.line)
                out.append(Finding(
                    path=f.path, line=f.line, col=0, rule=MALFORMED_RULE,
                    message="suppression without a reason (use "
                            "'# repro: noqa RPRxxx -- why')",
                    source=f.source))
        out.append(f)
    return out


def run_check(root, *, policy: CheckPolicy | None = None,
              baseline: dict[str, str] | None = None,
              select=None, program: bool = True) -> CheckReport:
    """Check every Python file under ``root``; the library entry point.

    ``root`` may be a directory (paths in findings are relative to it) or
    a single file.  ``baseline`` is a pre-loaded ``{fingerprint: reason}``
    map (see :func:`repro.check.baseline.load_baseline`).  ``program``
    gates the whole-program pass (:mod:`repro.check.flow`): every parsed
    file enters one call graph, the program rules run over it, and their
    findings join the per-file ones *before* suppressions apply — an
    inline ``noqa`` covers a dataflow finding exactly like a syntactic
    one.
    """
    root = Path(root)
    policy = policy or DEFAULT_POLICY
    report = CheckReport(root=str(root))
    base = package_base(root)
    contexts: list[FileContext] = []
    for path in iter_python_files(root):
        rel = path.relative_to(base).as_posix()
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
            contexts.append(FileContext(rel=rel, source=source, tree=tree,
                                        policy=policy))
        except SyntaxError as exc:
            report.parse_errors.append(f"{rel}: {exc.msg} (line {exc.lineno})")
        report.files_checked += 1
    for ctx in contexts:
        run_rules(ctx, select=select)
    if program and contexts:
        prog = build_program(contexts, policy)
        run_program_rules(prog, select=select)
    for ctx in contexts:
        report.findings.extend(_apply_noqa(ctx, ctx.findings))
    if baseline:
        report.findings, report.stale_baseline = apply_baseline(
            report.findings, baseline)
    return report
