"""Import-time registration of the built-in RPR rules.

Importing this module populates :data:`repro.check.rules.RULES`.  A new
rule is one module following the ``rules_*.py`` pattern plus one import
line here — see ``docs/static_analysis.md`` for the authoring guide.
"""

from . import rules_clock    # noqa: F401  RPR001 two-clock purity
from . import rules_rng      # noqa: F401  RPR002 determinism
from . import rules_charge   # noqa: F401  RPR003 charge accounting
from . import rules_caches   # noqa: F401  RPR004 bounded caches
from . import rules_fork     # noqa: F401  RPR005 fork-safety
from . import rules_vexec    # noqa: F401  RPR006 vexec hygiene
from . import rules_service  # noqa: F401  RPR007 service loop purity
from . import rules_incremental  # noqa: F401  RPR008 event-queue determinism
from . import rules_obs      # noqa: F401  RPR009 telemetry hygiene
from .flow import rules_async  # noqa: F401  RPR010/RPR011 async races
from .flow import rules_procs  # noqa: F401  RPR012 cross-process state
from .flow import rules_taint  # noqa: F401  RPR001/RPR002 flow upgrades
