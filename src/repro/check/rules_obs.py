"""RPR009 — hygiene of the operational-telemetry layer.

The observability package (:mod:`repro.obs`) runs always-on inside the
serving loop, so its failure modes are quiet and cumulative: a telemetry
buffer that grows without bound is a slow memory leak on the hot path, a
calendar-clock read threads wall timestamps into an event stream whose
ordering contract is the sequence number, and an f-string handed to an
emission site turns a structured record into a pre-formatted message no
consumer can filter on.  All three look perfectly healthy in tests.

The rule flags, inside obs modules
(:attr:`~repro.check.policy.CheckPolicy.obs_modules`):

* **unguarded buffer appends** — ``X.append(...)`` on an *attribute*
  target (instance state, the persistent buffers) whose enclosing
  function shows no ``len(X)`` cap comparison.  The sanctioned ring idiom
  keeps the guard next to the append::

      if len(self.records) >= self.capacity:
          del self.records[0]
      self.records.append(rec)

  Local-variable appends are scope-bounded and out of scope;
* **calendar-clock reads** — any banned clock from RPR001's list outside
  :attr:`~repro.check.policy.CheckPolicy.obs_clock_allow` (interval
  clocks only; provenance manifests own the timestamps).

and, at the emission sites (obs modules *plus* the service modules that
call them):

* **f-string payloads** — an ``ast.JoinedStr`` argument to any call
  whose leaf name is in
  :attr:`~repro.check.policy.CheckPolicy.obs_emit_calls`; pass
  structured fields (``code="bad_request"``) instead.
"""

from __future__ import annotations

import ast

from .rules import FileContext, Rule, register
from .rules_clock import BANNED_CLOCKS


@register
class ObsHygiene(Rule):
    id = "RPR009"
    name = "obs-hygiene"
    summary = ("telemetry buffer appended without a visible len() cap "
               "guard, calendar-clock read in obs code, or f-string "
               "payload at a structured emission site")
    rationale = ("always-on telemetry must stay bounded (RPR004 applied "
                 "to the hot path), sequence-ordered (no wall timestamps "
                 "in event streams), and structured (filterable fields, "
                 "never pre-formatted messages) — docs/operations.md")

    def check(self, ctx: FileContext) -> None:
        in_obs = ctx.policy.is_obs_module(ctx.rel)
        if in_obs:
            self._check_clocks(ctx)
            self._check_appends(ctx)
        if in_obs or ctx.policy.is_service_module(ctx.rel):
            self._check_payloads(ctx)

    # -- calendar clocks ------------------------------------------------
    def _check_clocks(self, ctx: FileContext) -> None:
        allow = set(ctx.policy.obs_clock_allow)
        for node, name in ctx.calls():
            if name in BANNED_CLOCKS and name not in allow:
                ctx.report(node, f"calendar-clock read {name}() in obs "
                                 f"code; event order is the sequence "
                                 f"number, intervals use perf_counter, "
                                 f"timestamps belong to provenance")

    # -- bounded buffers ------------------------------------------------
    def _check_appends(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "append"
                    and isinstance(node.func.value, ast.Attribute)):
                continue
            target = ctx.dotted(node.func.value)
            if target is None or _guarded(ctx, node, target):
                continue
            ctx.report(node, f"append to telemetry buffer {target} with "
                             f"no len({target}) cap guard in the "
                             f"enclosing function; bound the ring "
                             f"(drop-oldest) or it grows forever on "
                             f"the hot path")

    # -- structured payloads --------------------------------------------
    def _check_payloads(self, ctx: FileContext) -> None:
        emit_names = set(ctx.policy.obs_emit_calls)
        for node, name in ctx.calls():
            if name.rsplit(".", 1)[-1] not in emit_names:
                continue
            args = [*node.args, *(kw.value for kw in node.keywords)]
            if any(isinstance(a, ast.JoinedStr) for a in args):
                ctx.report(node, "f-string payload at a structured "
                                 "emission site; pass fields "
                                 "(code=..., name=...) so consumers "
                                 "can filter on them")


def _guarded(ctx: FileContext, node: ast.AST, target: str) -> bool:
    """A ``len(<target>)`` comparison in the append's enclosing scope."""
    fn = ctx.enclosing_function(node)
    scope = fn if fn is not None else ctx.tree
    for sub in ast.walk(scope):
        if not isinstance(sub, ast.Compare):
            continue
        for expr in [sub.left, *sub.comparators]:
            if isinstance(expr, ast.Call) \
                    and isinstance(expr.func, ast.Name) \
                    and expr.func.id == "len" and expr.args \
                    and ctx.dotted(expr.args[0]) == target:
                return True
    return False
