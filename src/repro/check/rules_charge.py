"""RPR003 — charge accounting.

In the data-movement layers (``ops/``, the machine simulators) every
permutation of PE data must be paid for: a function that gathers or
swaps array slots (``arr[dst] = arr[src]``, ``out[1:, :] = g[:-1, :]``)
without calling into the charge API is moving data the cost model never
sees — exactly the bug class that de-syncs outputs from the paper's
Theta-bounds while every differential test still passes on *values*.

The rule flags **movement writes** — assignments whose target is a
subscript and whose right-hand side reads a subscript — inside functions
of the charge scope that never call a charge API
(:attr:`repro.check.policy.CheckPolicy.charge_calls`).  Pure index math
on non-PE data belongs outside the charge scope (see the policy), or
under a reasoned ``# repro: noqa RPR003``.
"""

from __future__ import annotations

import ast

from .rules import FileContext, Rule, register


@register
class ChargeAccounting(Rule):
    id = "RPR003"
    name = "charge-accounting"
    summary = ("PE-data movement (subscript-to-subscript writes) in a "
               "function that never calls the Metrics/plan charge API")
    rationale = ("uncharged data movement silently decouples simulated "
                 "time from the paper's cost model while value-based "
                 "tests stay green (docs/cost_model.md)")

    def check(self, ctx: FileContext) -> None:
        if not ctx.policy.in_charge_scope(ctx.rel):
            return
        charge_names = set(ctx.policy.charge_calls)
        charging = {id(fn) for fn in ctx.functions()
                    if _calls_charge_api(fn, charge_names)}

        def covered(fn) -> bool:
            # A nested helper is covered when any enclosing def charges.
            cur = fn
            while cur is not None:
                if id(cur) in charging:
                    return True
                cur = ctx.enclosing_function(cur)
            return False

        for fn in ctx.functions():
            if covered(fn):
                continue
            for node in ast.iter_child_nodes(fn):
                for stmt in ast.walk(node):
                    if _movement_write(stmt) and \
                            ctx.enclosing_function(stmt) is fn:
                        ctx.report(stmt, f"data movement in {fn.name}() "
                                         f"without a charge-API call "
                                         f"(charge_*, exchange*, *_sweep, "
                                         f"execute_plan)")


def _calls_charge_api(fn: ast.AST, charge_names: set[str]) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name in charge_names:
                return True
    return False


def _movement_write(node: ast.AST) -> bool:
    if not isinstance(node, (ast.Assign, ast.AugAssign)):
        return False
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    if not any(isinstance(t, ast.Subscript) for t in targets):
        return False
    return any(isinstance(sub, ast.Subscript)
               for sub in ast.walk(node.value))
