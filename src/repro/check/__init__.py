"""Static invariant checking for the reproduction (`python -m repro.check`).

The runtime layers enforce the cost-model contracts *dynamically* (the
differential oracle, golden scalings, sim-parity smokes); this package
enforces the ones that can be read straight off the source, before any
test runs:

========  ==================  ===========================================
RPR001    two-clock purity    wall-clock reads only in the wall-clock
                              modules (metrics/trace/parallel/benchmarks)
RPR002    determinism         no module-global RNG state, no env reads
                              outside entry points, no set-order float
                              accumulation in accounting paths
RPR003    charge accounting   PE-data movement in ops/machines must call
                              the Metrics/plan charge API
RPR004    bounded caches      module-level memos are size-capped and
                              clearable (test isolation)
RPR005    fork-safety         process-pool workers are picklable, pure
                              functions of their item
RPR010    await-straddled     shared state written on both sides of an
          writes              await without a lock in scope
RPR011    check-then-act      cache read before an await, write after it
RPR012    cross-process       worker-mutated module globals the parent
          state               process also reads
========  ==================  ===========================================

RPR001/RPR002 additionally run *interprocedurally* through
:mod:`repro.check.flow`: a whole-program call graph plus forward taint
analysis flags host-clock, RNG, and unordered-iteration values that
cross function boundaries into charge accounting, payload bytes, or
float accumulation — flows no single-file rule can see.

Findings are suppressible per line (``# repro: noqa RPR001 -- reason``)
or per committed-baseline entry; both channels require a reason.  The
tier-1 gate (``tests/check/test_tree_clean.py``) runs :func:`run_check`
over ``src/repro`` and fails on any active finding — the same contract as
``python -m repro.check`` exiting 0.
"""

from .baseline import BaselineError, load_baseline, write_baseline
from .engine import CheckReport, check_file, run_check
from .findings import Finding
from .flow import (
    PROGRAM_RULES,
    CallGraph,
    ProgramContext,
    ProgramRule,
    TaintAnalysis,
    build_graph,
    build_program,
    register_program,
)
from .policy import DEFAULT_POLICY, CheckPolicy
from .rules import RULES, FileContext, Rule, register

__all__ = [
    "BaselineError", "CallGraph", "CheckPolicy", "CheckReport",
    "DEFAULT_POLICY", "FileContext", "Finding", "PROGRAM_RULES",
    "ProgramContext", "ProgramRule", "RULES", "Rule", "TaintAnalysis",
    "build_graph", "build_program", "check_file", "load_baseline",
    "register", "register_program", "run_check", "write_baseline",
]
