"""``python -m repro.check`` — run the static invariant checker.

Exit-code contract (shared with ``python -m repro.verify`` and consumed
by the tier-1 gate and CI):

* ``0`` — clean: no active finding (suppressed/baselined ones may exist),
* ``1`` — findings: at least one active violation (or a stale baseline
  entry under ``--strict-baseline``),
* ``2`` — usage or input error (bad path, malformed baseline, bad flag,
  a ``--changed`` ref git cannot resolve).

Examples::

    python -m repro.check                      # check src/repro (text)
    python -m repro.check --json               # machine-readable report
    python -m repro.check --format sarif       # SARIF 2.1.0 for CI
    python -m repro.check --changed            # findings vs HEAD only
    python -m repro.check --changed origin/main
    python -m repro.check --baseline tests/check/baseline.json
    python -m repro.check --select RPR001,RPR004 src/repro/ops
    python -m repro.check --write-baseline new-baseline.json

``--changed`` still builds the call graph and runs the interprocedural
rules over the *whole* program — a changed caller can introduce a taint
flow whose sink is elsewhere — but only findings located in files
changed versus the ref (default ``HEAD``) are reported.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from .baseline import BaselineError, load_baseline, write_baseline
from .engine import package_base, run_check
from .flow import PROGRAM_RULES
from .rules import RULES
from .sarif import to_sarif

#: Default tree to check: the installed package source.
DEFAULT_ROOT = Path(__file__).resolve().parent.parent

#: Default committed baseline, used when it exists and no flag overrides.
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] / "tests" / "check" \
    / "baseline.json"


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="AST-based invariant linter: two-clock purity, "
                    "determinism, charge accounting, bounded caches, "
                    "fork-safety, async-race and cross-process hygiene, "
                    "interprocedural clock/RNG taint.",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help=f"files or trees to check (default: {DEFAULT_ROOT})")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the full report as JSON on stdout "
                        "(same as --format json)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default=None, dest="fmt",
                   help="output format (default: text)")
    p.add_argument("--changed", nargs="?", const="HEAD", default=None,
                   metavar="REF",
                   help="report only findings in files changed vs the "
                        "git ref (default ref: HEAD); the program-wide "
                        "analysis still covers the whole tree")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="baseline of grandfathered findings (default: "
                        "tests/check/baseline.json when present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the default baseline file")
    p.add_argument("--write-baseline", metavar="FILE", default=None,
                   help="write the active findings as a new baseline and "
                        "exit 0")
    p.add_argument("--select", metavar="RPRxxx[,RPRyyy...]", default=None,
                   help="run only these (comma-separated) rules")
    p.add_argument("--show-suppressed", action="store_true",
                   help="also list suppressed/baselined findings")
    p.add_argument("--strict-baseline", action="store_true",
                   help="fail (exit 1) on stale baseline entries")
    p.add_argument("--list-rules", action="store_true",
                   help="describe the registered rules and exit")
    return p


def _resolve_baseline(args) -> dict[str, str] | None:
    if args.no_baseline:
        return None
    if args.baseline:
        return load_baseline(args.baseline)
    if DEFAULT_BASELINE.is_file():
        return load_baseline(DEFAULT_BASELINE)
    return None


def _changed_paths(ref: str) -> set[Path] | None:
    """Absolute paths changed vs ``ref`` (tracked diff + untracked)."""
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True, text=True, check=True).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        print(f"error: --changed {ref}: {detail.strip()}", file=sys.stderr)
        return None
    root = Path(top)
    return {(root / line).resolve()
            for line in (diff + untracked).splitlines() if line.strip()}


def _filter_changed(report, root: Path, changed: set[Path]) -> None:
    base = package_base(root)
    report.findings = [
        f for f in report.findings if (base / f.path).resolve() in changed]


def _dedupe(reports) -> None:
    """Drop findings already reported by an earlier (overlapping) root.

    Identity is (path, line, col, rule, message): the paths are relative
    to the shared package base, so the same file reached through two CLI
    roots or two overlapping policy scopes collapses to one finding.
    """
    seen: set = set()
    for report in reports:
        kept = []
        for f in report.findings:
            key = (f.path, f.line, f.col, f.rule, f.message)
            if key in seen:
                continue
            seen.add(key)
            kept.append(f)
        report.findings = kept


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for rid, rule in sorted({**RULES, **PROGRAM_RULES}.items()):
            print(f"{rid} {rule.name}: {rule.summary}")
        return 0
    fmt = args.fmt or ("json" if args.as_json else "text")
    try:
        baseline = _resolve_baseline(args)
    except (BaselineError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    roots = [Path(p) for p in args.paths] or [DEFAULT_ROOT]
    missing = [str(r) for r in roots if not r.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    known = set(RULES) | set(PROGRAM_RULES)
    unknown = sorted(set(select or ()) - known)
    if unknown:
        print(f"error: unknown rule(s): {', '.join(unknown)} "
              f"(see --list-rules)", file=sys.stderr)
        return 2
    changed: set[Path] | None = None
    if args.changed is not None:
        changed = _changed_paths(args.changed)
        if changed is None:
            return 2

    reports = []
    for root in roots:
        rep = run_check(root, baseline=baseline, select=select)
        if changed is not None:
            _filter_changed(rep, root, changed)
        reports.append(rep)
    _dedupe(reports)
    findings = [f for rep in reports for f in rep.active]

    if args.write_baseline:
        n = write_baseline(args.write_baseline, findings)
        print(f"baseline written: {args.write_baseline} ({n} entries)")
        return 0

    stale = [fp for rep in reports for fp in rep.stale_baseline]
    if fmt == "json":
        if len(reports) == 1:
            doc = reports[0].to_dict()
        else:
            doc = {"version": 1, "ok": all(r.ok for r in reports),
                   "reports": [r.to_dict() for r in reports]}
        print(json.dumps(doc, indent=2))
    elif fmt == "sarif":
        print(json.dumps(to_sarif(reports), indent=2))
    else:
        for rep in reports:
            print(rep.render(show_suppressed=args.show_suppressed))
    if any(not rep.ok for rep in reports):
        return 1
    if stale and args.strict_baseline:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
