"""``python -m repro.check`` — run the static invariant checker.

Exit-code contract (shared with ``python -m repro.verify`` and consumed
by the tier-1 gate and CI):

* ``0`` — clean: no active finding (suppressed/baselined ones may exist),
* ``1`` — findings: at least one active violation (or a stale baseline
  entry under ``--strict-baseline``),
* ``2`` — usage or input error (bad path, malformed baseline, bad flag).

Examples::

    python -m repro.check                      # check src/repro (text)
    python -m repro.check --json               # machine-readable report
    python -m repro.check --baseline tests/check/baseline.json
    python -m repro.check --select RPR001,RPR004 src/repro/ops
    python -m repro.check --write-baseline new-baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import BaselineError, load_baseline, write_baseline
from .engine import run_check
from .rules import RULES

#: Default tree to check: the installed package source.
DEFAULT_ROOT = Path(__file__).resolve().parent.parent

#: Default committed baseline, used when it exists and no flag overrides.
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] / "tests" / "check" \
    / "baseline.json"


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="AST-based invariant linter: two-clock purity, "
                    "determinism, charge accounting, bounded caches, "
                    "fork-safety.",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help=f"files or trees to check (default: {DEFAULT_ROOT})")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the full report as JSON on stdout")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="baseline of grandfathered findings (default: "
                        "tests/check/baseline.json when present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the default baseline file")
    p.add_argument("--write-baseline", metavar="FILE", default=None,
                   help="write the active findings as a new baseline and "
                        "exit 0")
    p.add_argument("--select", metavar="RPRxxx[,RPRyyy...]", default=None,
                   help="run only these (comma-separated) rules")
    p.add_argument("--show-suppressed", action="store_true",
                   help="also list suppressed/baselined findings")
    p.add_argument("--strict-baseline", action="store_true",
                   help="fail (exit 1) on stale baseline entries")
    p.add_argument("--list-rules", action="store_true",
                   help="describe the registered rules and exit")
    return p


def _resolve_baseline(args) -> dict[str, str] | None:
    if args.no_baseline:
        return None
    if args.baseline:
        return load_baseline(args.baseline)
    if DEFAULT_BASELINE.is_file():
        return load_baseline(DEFAULT_BASELINE)
    return None


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for rid, rule in sorted(RULES.items()):
            print(f"{rid} {rule.name}: {rule.summary}")
        return 0
    try:
        baseline = _resolve_baseline(args)
    except (BaselineError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    roots = [Path(p) for p in args.paths] or [DEFAULT_ROOT]
    missing = [str(r) for r in roots if not r.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    unknown = sorted(set(select or ()) - set(RULES))
    if unknown:
        print(f"error: unknown rule(s): {', '.join(unknown)} "
              f"(see --list-rules)", file=sys.stderr)
        return 2

    findings = []
    reports = []
    for root in roots:
        rep = run_check(root, baseline=baseline, select=select)
        reports.append(rep)
        findings.extend(rep.active)

    if args.write_baseline:
        n = write_baseline(args.write_baseline, findings)
        print(f"baseline written: {args.write_baseline} ({n} entries)")
        return 0

    stale = [fp for rep in reports for fp in rep.stale_baseline]
    if args.as_json:
        if len(reports) == 1:
            doc = reports[0].to_dict()
        else:
            doc = {"version": 1, "ok": all(r.ok for r in reports),
                   "reports": [r.to_dict() for r in reports]}
        print(json.dumps(doc, indent=2))
    else:
        for rep in reports:
            print(rep.render(show_suppressed=args.show_suppressed))
    if any(not rep.ok for rep in reports):
        return 1
    if stale and args.strict_baseline:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
