"""Whole-program call graph over the checked tree.

Nodes are functions (module-level defs, methods, and nested defs); edges
are resolved call sites.  Resolution is deliberately *syntactic but
canonical*: it reuses the engine's alias discipline — every name is
normalised to its defining module's dotted path — and extends it with
the three resolution steps the per-file rules cannot do:

* **relative imports** — ``from ..ops.plans import set_compiled_plans``
  inside ``repro.service.workers`` binds ``set_compiled_plans`` to
  ``repro.ops.plans.set_compiled_plans``;
* **method attribution** — ``self.method()`` resolves through the
  enclosing class (and its known bases); ``self.attr.method()`` and
  ``obj.method()`` resolve through inferred attribute/local types
  (``self.attr = ClassName(...)`` in any method, ``attr: ClassName``
  annotations, ``obj = ClassName(...)`` locals);
* **submitted callables** — a bare function reference passed to a
  pool-submit name (``pool.submit(execute_batch, payload)``) records a
  ``submit`` edge: the function is not called here, but it *will* run,
  in another thread or process (RPR005/RPR012 territory).

The graph is a pure function of the parsed sources: node keys are
``module.qualname`` strings, edges are kept in deterministic source
order, and :meth:`CallGraph.to_dict` is byte-stable — which is what lets
``tests/check`` pin a golden snapshot of the service's graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CallGraph", "CallSite", "ClassInfo", "FunctionInfo",
           "ModuleInfo", "build_graph", "module_name_of", "resolve_aliases"]

#: Leaf names whose call hands an argument callable to an executor.
SUBMIT_LEAFS = ("submit", "parallel_map", "run_in_executor", "map")


def module_name_of(rel: str) -> str:
    """Dotted module name for a POSIX path relative to the package base.

    ``repro/service/server.py`` -> ``repro.service.server``;
    ``repro/service/__init__.py`` -> ``repro.service``.
    """
    name = rel[:-3] if rel.endswith(".py") else rel
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def resolve_aliases(tree: ast.Module, module: str,
                    is_package: bool) -> dict[str, str]:
    """Local name -> canonical dotted target, relative imports included.

    Extends :func:`repro.check.rules._import_aliases` (same shape, same
    absolute-import behaviour) by resolving ``from .`` / ``from ..``
    against ``module``, so cross-module edges inside the checked package
    resolve without the package being importable.
    """
    package = module if is_package else module.rsplit(".", 1)[0]
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = package.split(".")
                if node.level - 1 >= len(parts):
                    continue  # escapes the checked tree; unresolvable
                base = ".".join(parts[: len(parts) - (node.level - 1)])
                target = f"{base}.{node.module}" if node.module else base
            elif node.module:
                target = node.module
            else:  # pragma: no cover - `from import` is a syntax error
                continue
            for a in node.names:
                if a.name != "*":
                    aliases[a.asname or a.name] = f"{target}.{a.name}"
    return aliases


def dotted_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a Name/Attribute chain, or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One graph node: a def (or a module's top-level statement body)."""

    key: str                 # "module.qualname" ("module.<module>" for bodies)
    module: str
    qualname: str
    rel: str
    node: ast.AST            # FunctionDef | AsyncFunctionDef | Module
    lineno: int
    is_async: bool = False
    class_name: str | None = None
    params: tuple[str, ...] = ()

    @property
    def leaf(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class: its methods, known bases, and inferred attribute types."""

    key: str                 # "module.ClassName"
    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: tuple[str, ...] = ()          # canonical dotted base names
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> class key


@dataclass
class ModuleInfo:
    """One checked file: names, defs, classes, aliases, globals."""

    name: str
    rel: str
    tree: ast.Module
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)  # qualname
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    globals: dict[str, int] = field(default_factory=dict)  # name -> def line


@dataclass
class CallSite:
    """One resolved (or resolution-attempted) call edge."""

    caller: str              # FunctionInfo.key
    callee: str | None       # FunctionInfo.key, or None when unresolved
    name: str                # the canonical dotted name at the site
    node: ast.AST            # the Call node (or the passed callable ref)
    rel: str
    lineno: int
    kind: str = "call"       # "call" | "submit" | "init"


class CallGraph:
    """Functions, classes, and resolved call edges of one checked tree."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: list[CallSite] = []
        self._out: dict[str, list[CallSite]] = {}
        self._in: dict[str, list[CallSite]] = {}

    # -- queries --------------------------------------------------------
    def callees_of(self, key: str) -> list[CallSite]:
        return self._out.get(key, [])

    def callers_of(self, key: str) -> list[CallSite]:
        return self._in.get(key, [])

    def reachable_from(self, keys) -> set[str]:
        """Function keys reachable through call *and* submit edges."""
        seen: set[str] = set()
        stack = [k for k in keys if k in self.functions]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for site in self._out.get(cur, ()):
                if site.callee is not None and site.callee not in seen:
                    stack.append(site.callee)
        return seen

    def submitted(self) -> list[CallSite]:
        """Every ``submit``-kind edge (callables handed to executors)."""
        return [s for s in self.calls if s.kind == "submit"]

    def to_dict(self) -> dict:
        """Deterministic JSON form (the golden-snapshot surface)."""
        return {
            "version": 1,
            "functions": {
                key: {
                    "rel": fn.rel, "line": fn.lineno,
                    "async": fn.is_async,
                    "class": fn.class_name,
                }
                for key, fn in sorted(self.functions.items())
            },
            "edges": [
                {"caller": s.caller, "callee": s.callee, "name": s.name,
                 "line": s.lineno, "kind": s.kind}
                for s in self.calls if s.callee is not None
            ],
        }

    # -- construction ---------------------------------------------------
    def add_function(self, fn: FunctionInfo) -> None:
        self.functions[fn.key] = fn

    def add_call(self, site: CallSite) -> None:
        self.calls.append(site)
        self._out.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self._in.setdefault(site.callee, []).append(site)


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def build_graph(files) -> CallGraph:
    """Build the call graph for ``files``: iterable of ``(rel, tree)``.

    ``rel`` is the POSIX path relative to the package base (the same
    paths findings carry); ``tree`` the parsed :class:`ast.Module`.
    """
    graph = CallGraph()
    for rel, tree in files:
        _collect_module(graph, rel, tree)
    _infer_attr_types(graph)
    for mod in graph.modules.values():
        _collect_calls(graph, mod)
    return graph


def _collect_module(graph: CallGraph, rel: str, tree: ast.Module) -> None:
    name = module_name_of(rel)
    mod = ModuleInfo(name=name, rel=rel, tree=tree,
                     aliases=resolve_aliases(tree, name,
                                             rel.endswith("__init__.py")))
    graph.modules[name] = mod
    body_fn = FunctionInfo(key=f"{name}.<module>", module=name,
                           qualname="<module>", rel=rel, node=tree, lineno=1)
    graph.add_function(body_fn)
    mod.functions["<module>"] = body_fn

    def walk_defs(nodes, prefix: str, class_info: ClassInfo | None) -> None:
        for stmt in nodes:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                fn = FunctionInfo(
                    key=f"{name}.{qual}", module=name, qualname=qual,
                    rel=rel, node=stmt, lineno=stmt.lineno,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    class_name=class_info.name if class_info else None,
                    params=tuple(a.arg for a in (
                        stmt.args.posonlyargs + stmt.args.args
                        + stmt.args.kwonlyargs)),
                )
                graph.add_function(fn)
                mod.functions[qual] = fn
                if class_info is not None and "." not in qual.replace(
                        f"{class_info.name}.", "", 1):
                    class_info.methods[stmt.name] = fn
                walk_defs(stmt.body, f"{qual}.", class_info)
            elif isinstance(stmt, ast.ClassDef) and class_info is None \
                    and not prefix:
                cls = ClassInfo(
                    key=f"{name}.{stmt.name}", module=name, name=stmt.name,
                    node=stmt,
                    bases=tuple(b for b in (
                        dotted_name(base, mod.aliases)
                        for base in stmt.bases) if b),
                )
                graph.classes[cls.key] = cls
                mod.classes[stmt.name] = cls
                walk_defs(stmt.body, f"{stmt.name}.", cls)
            elif isinstance(stmt, (ast.If, ast.Try)):
                for sub in ast.iter_child_nodes(stmt):
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef, ast.ClassDef)):
                        walk_defs([sub], prefix, class_info)

    walk_defs(tree.body, "", None)

    # Module-level bindings (the globals RPR012 watches).
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for t in targets:
            if isinstance(t, ast.Name):
                mod.globals.setdefault(t.id, stmt.lineno)
            elif isinstance(t, ast.Tuple):
                for elt in t.elts:
                    if isinstance(elt, ast.Name):
                        mod.globals.setdefault(elt.id, stmt.lineno)


def _infer_attr_types(graph: CallGraph) -> None:
    """``self.attr = ClassName(...)`` / ``attr: ClassName`` -> attr types."""
    for cls in graph.classes.values():
        mod = graph.modules[cls.module]
        for fn in cls.methods.values():
            for stmt in ast.walk(fn.node):
                value_cls = None
                target = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    value_cls = _class_of_expr(graph, mod, stmt.value)
                elif isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                    value_cls = (_class_of_expr(graph, mod, stmt.value)
                                 or _class_in_annotation(graph, mod,
                                                         stmt.annotation))
                if (value_cls and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    cls.attr_types.setdefault(target.attr, value_cls)
        # Annotated class-level attributes (`attr: ClassName` in the body).
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                found = _class_in_annotation(graph, mod, stmt.annotation)
                if found:
                    cls.attr_types.setdefault(stmt.target.id, found)


def _class_of_expr(graph: CallGraph, mod: ModuleInfo,
                   expr: ast.AST | None) -> str | None:
    """The class key constructed by ``expr``, when it is a known call."""
    if not isinstance(expr, ast.Call):
        return None
    name = dotted_name(expr.func, mod.aliases)
    if name is None:
        return None
    return _lookup_class(graph, mod, name)


def _class_in_annotation(graph: CallGraph, mod: ModuleInfo,
                         annotation: ast.AST | None) -> str | None:
    """First known class named inside an annotation expression."""
    if annotation is None:
        return None
    for node in ast.walk(annotation):
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = dotted_name(node, mod.aliases)
            if name:
                found = _lookup_class(graph, mod, name)
                if found:
                    return found
    return None


def _lookup_class(graph: CallGraph, mod: ModuleInfo,
                  name: str) -> str | None:
    if name in mod.classes:
        return mod.classes[name].key
    if name in graph.classes:
        return name
    # "pkg.module.Class" spelled through an alias or absolute import.
    if "." in name:
        head, leaf = name.rsplit(".", 1)
        other = graph.modules.get(head)
        if other is not None and leaf in other.classes:
            return other.classes[leaf].key
    return None


def _lookup_function(graph: CallGraph, name: str) -> str | None:
    """A function key for a canonical dotted name, or ``None``.

    Tries the longest module prefix: ``repro.service.model.run_driver``
    splits into module ``repro.service.model`` + qualname ``run_driver``;
    ``repro.service.cache.ShardedResultCache.get`` into the module plus
    ``ShardedResultCache.get``.
    """
    parts = name.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        mod = graph.modules.get(".".join(parts[:cut]))
        if mod is None:
            continue
        qual = ".".join(parts[cut:])
        if qual in mod.functions:
            return mod.functions[qual].key
        cls = mod.classes.get(parts[cut])
        if cls is not None and len(parts) == cut + 1:
            init = cls.methods.get("__init__")
            return init.key if init else None
        if cls is not None and len(parts) == cut + 2:
            found = _method_on(graph, cls, parts[cut + 1])
            if found:
                return found
    return None


def _method_on(graph: CallGraph, cls: ClassInfo,
               method: str) -> str | None:
    """Resolve a method on a class, walking known bases (one pass)."""
    seen: set[str] = set()
    stack = [cls]
    while stack:
        cur = stack.pop(0)
        if cur.key in seen:
            continue
        seen.add(cur.key)
        if method in cur.methods:
            return cur.methods[method].key
        for base in cur.bases:
            base_key = _lookup_class(graph, graph.modules[cur.module], base)
            if base_key and base_key in graph.classes:
                stack.append(graph.classes[base_key])
    return None


def _collect_calls(graph: CallGraph, mod: ModuleInfo) -> None:
    for fn in _body_order(mod):
        local_types = _local_types(graph, mod, fn)
        nested = {f.leaf: f.key for f in mod.functions.values()
                  if f.qualname.startswith(f"{fn.qualname}.")
                  and f.qualname.count(".") == fn.qualname.count(".") + 1}
        for call in _own_calls(fn):
            name = dotted_name(call.func, mod.aliases)
            if name is None:
                continue
            callee = _resolve_call(graph, mod, fn, name, nested, local_types)
            graph.add_call(CallSite(
                caller=fn.key, callee=callee, name=name, node=call,
                rel=mod.rel, lineno=call.lineno))
            leaf = name.rsplit(".", 1)[-1]
            if leaf in SUBMIT_LEAFS:
                for arg in call.args:
                    ref = dotted_name(arg, mod.aliases)
                    if ref is None:
                        continue
                    target = _resolve_call(graph, mod, fn, ref, nested,
                                           local_types)
                    if target is not None:
                        graph.add_call(CallSite(
                            caller=fn.key, callee=target, name=ref,
                            node=arg, rel=mod.rel, lineno=arg.lineno,
                            kind="submit"))


def _body_order(mod: ModuleInfo):
    return sorted(mod.functions.values(), key=lambda f: (f.lineno, f.key))


def _own_calls(fn: FunctionInfo):
    """Call nodes lexically inside ``fn`` but not inside a nested def."""
    skip: set[int] = set()
    root = fn.node
    for node in ast.walk(root):
        if node is root:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            for sub in ast.walk(node):
                skip.add(id(sub))
    for node in ast.walk(root):
        if isinstance(node, ast.Call) and id(node) not in skip:
            yield node


def _local_types(graph: CallGraph, mod: ModuleInfo,
                 fn: FunctionInfo) -> dict[str, str]:
    """Local/parameter name -> class key, from constructor assignments
    and parameter annotations inside ``fn``."""
    out: dict[str, str] = {}
    node = fn.node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in (node.args.posonlyargs + node.args.args
                    + node.args.kwonlyargs):
            found = _class_in_annotation(graph, mod, arg.annotation)
            if found:
                out[arg.arg] = found
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            found = _class_of_expr(graph, mod, stmt.value)
            if found:
                out.setdefault(stmt.targets[0].id, found)
    return out


def _resolve_call(graph: CallGraph, mod: ModuleInfo, fn: FunctionInfo,
                  name: str, nested: dict[str, str],
                  local_types: dict[str, str]) -> str | None:
    parts = name.split(".")
    head = parts[0]
    # self.method() / cls.method() / self.attr.method()
    if head in ("self", "cls") and fn.class_name is not None:
        cls = mod.classes.get(fn.class_name)
        if cls is None:
            return None
        if len(parts) == 2:
            return _method_on(graph, cls, parts[1])
        if len(parts) == 3:
            attr_cls = cls.attr_types.get(parts[1])
            if attr_cls and attr_cls in graph.classes:
                return _method_on(graph, graph.classes[attr_cls], parts[2])
        return None
    # obj.method() with an inferred local/parameter type.
    if len(parts) == 2 and head in local_types:
        owner = graph.classes.get(local_types[head])
        if owner is not None:
            return _method_on(graph, owner, parts[1])
    if len(parts) == 1:
        if head in nested:
            return nested[head]
        if head in mod.functions:
            return mod.functions[head].key
        if head in mod.classes:
            init = mod.classes[head].methods.get("__init__")
            return init.key if init else None
        return None
    # Class.method in the same module.
    if parts[0] in mod.classes:
        found = _method_on(graph, mod.classes[parts[0]], parts[1]) \
            if len(parts) == 2 else None
        if found:
            return found
    # Fully-qualified (alias-resolved) name across the checked tree.
    return _lookup_function(graph, name)
