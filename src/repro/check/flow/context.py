"""Program rules: the whole-program twin of the per-file rule contract.

A :class:`ProgramRule` is authored exactly like a file rule — ~30 lines:
subclass, set ``id``/``name``/``summary``/``rationale``, implement
``check(program)`` calling ``program.report(rel, node, message)``, and
decorate with ``@register_program``.  The difference is the context: a
:class:`ProgramContext` carries every parsed file at once, the resolved
call graph, and (lazily) the taint analysis.

Findings raised here land in the owning file's :class:`FileContext`, so
they go through the *same* downstream contract as file-rule findings —
inline ``# repro: noqa`` comments, the baseline file, fingerprints, the
CLI exit code.  A rule may emit under a different rule id than its own
(``rule=`` argument to :meth:`ProgramContext.report`): that is how the
taint rules upgrade RPR001/RPR002 from syntactic to dataflow-aware
while keeping one suppression channel per invariant.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..findings import Finding
from ..policy import DEFAULT_POLICY, CheckPolicy
from ..rules import FileContext
from .graph import CallGraph, build_graph
from .taint import TaintAnalysis

#: The process-wide program-rule registry, ordered by registration.
#: Separate from ``RULES`` so a program rule may *emit* under an existing
#: file-rule id (the RPR001/RPR002 flow upgrades) without an id clash.
PROGRAM_RULES: dict[str, "ProgramRule"] = {}  # repro: noqa RPR004 -- import-time rule registry of fixed size, not a runtime cache


def register_program(cls):
    """Class decorator adding a rule (by instance) to PROGRAM_RULES."""
    rule = cls()
    if not rule.id or rule.id in PROGRAM_RULES:
        raise ValueError(f"program rule id {rule.id!r} missing or taken")
    PROGRAM_RULES[rule.id] = rule
    return cls


class ProgramRule:
    """One named, suppressible whole-program invariant."""

    id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""
    #: Rule ids this rule emits findings under (defaults to ``(id,)``).
    #: ``--select`` runs the rule when any of these is selected.
    emits: tuple[str, ...] = ()

    def check(self, program: "ProgramContext") -> None:  # pragma: no cover
        raise NotImplementedError

    def emitted_ids(self) -> tuple[str, ...]:
        return self.emits or (self.id,)

    def describe(self) -> dict:
        return {"id": self.id, "name": self.name, "summary": self.summary,
                "rationale": self.rationale,
                "emits": list(self.emitted_ids())}


@dataclass
class ProgramContext:
    """Everything a program rule needs: all files, the graph, the taint."""

    policy: CheckPolicy
    contexts: dict[str, FileContext] = field(default_factory=dict)
    graph: CallGraph = field(default_factory=CallGraph)
    _taint: TaintAnalysis | None = None
    _rule: ProgramRule | None = None

    @property
    def taint(self) -> TaintAnalysis:
        """The (lazily computed, cached) whole-program taint analysis."""
        if self._taint is None:
            self._taint = TaintAnalysis(self.graph, self.policy)
            self._taint.run()
        return self._taint

    def report(self, rel: str, node: ast.AST, message: str,
               rule: str | None = None) -> None:
        """Record a finding against ``rel`` (must be a checked file)."""
        ctx = self.contexts[rel]
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        src = ctx.lines[line - 1] if 0 < line <= len(ctx.lines) else ""
        assert self._rule is not None
        ctx.findings.append(Finding(
            path=rel, line=line, col=col,
            rule=rule or self._rule.id, message=message, source=src,
        ))


def build_program(contexts, policy: CheckPolicy | None = None,
                  ) -> ProgramContext:
    """Assemble a :class:`ProgramContext` from parsed file contexts."""
    ctx_map = {ctx.rel: ctx for ctx in contexts}
    graph = build_graph(sorted(
        ((rel, ctx.tree) for rel, ctx in ctx_map.items())))
    return ProgramContext(policy=policy or DEFAULT_POLICY,
                          contexts=ctx_map, graph=graph)


def run_program_rules(program: ProgramContext, select=None) -> None:
    """Run the registered program rules (optionally a subset)."""
    for rule in PROGRAM_RULES.values():
        if select and not set(rule.emitted_ids()) & set(select):
            continue
        program._rule = rule
        rule.check(program)
    program._rule = None
