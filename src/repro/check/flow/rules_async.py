"""RPR010/RPR011 — async-race hygiene for the serving layer.

Both rules reason about one ``async def`` at a time, which is exactly
where asyncio races live: an ``await`` is the *only* place another task
can interleave, so shared state touched on both sides of one is the
whole attack surface.

* **RPR010** — the same shared chain (``self.attr`` or a declared
  ``global``) is written both before and after an ``await`` in one
  coroutine, with no enclosing ``async with <lock>``: another task can
  observe (or clobber) the half-updated state at the suspension point.
* **RPR011** — check-then-act across a suspension: a cache chain is
  read (``.get``/membership) before an ``await`` and written
  (``.put``/``.setdefault``/subscript store/…) after it.  The answer
  the check produced is stale by the time the write lands; two tasks
  computing the same key both miss and both insert.

Lock discipline is recognised structurally: statements inside an
``async with`` whose context expression's name contains a lock hint
(``lock``/``mutex``/``sem``) are exempt.  The rules are deliberately
not loop-carried — a write that only precedes awaits on later loop
iterations (the drain-loop pattern) is the sanctioned shape.
"""

from __future__ import annotations

import ast

from ..rules import FileContext, Rule, register

#: Method names that mutate their receiver in place.
WRITE_METHODS = frozenset({
    "append", "add", "clear", "extend", "update", "pop", "remove",
    "discard", "insert", "setdefault", "popitem", "appendleft",
    "push", "put", "invalidate", "inc", "dec", "set",
})


def _chain(node: ast.AST) -> str | None:
    """Dotted text of a Name/Attribute chain (no alias resolution —
    these are instance attributes, not imports)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_lock_name(name: str | None, hints: tuple[str, ...]) -> bool:
    if not name:
        return False
    leaf = name.rsplit(".", 1)[-1].lower()
    return any(h in leaf for h in hints)


class _AsyncFrame:
    """The await/write/read sites of one ``async def`` body.

    Every statement is visited exactly once; expression scanning covers
    only the statement's own expressions (compound statements contribute
    their header — test/iter/items — and recurse per body), so one
    lexical site is never double-counted.
    """

    def __init__(self, ctx: FileContext, fn: ast.AsyncFunctionDef) -> None:
        self.ctx = ctx
        self.fn = fn
        self.awaits: list[int] = []
        #: chain -> [(line, node, lock_guarded)]
        self.writes: dict[str, list[tuple[int, ast.AST, bool]]] = {}
        self.reads: dict[str, list[tuple[int, ast.AST, bool]]] = {}
        self.globals: set[str] = set()
        for stmt in fn.body:          # collect globals first: order-free
            if isinstance(stmt, ast.Global):
                self.globals.update(stmt.names)
        self._walk(fn.body, guarded=False)

    # -- classification -------------------------------------------------
    def _shared(self, chain: str | None) -> str | None:
        """Normalise to a shared-state chain, or None for locals."""
        if chain is None:
            return None
        head = chain.split(".", 1)[0]
        if head in ("self", "cls") and "." in chain:
            return chain
        if chain in self.globals:
            return chain
        return None

    def _note_write(self, node: ast.AST, chain: str | None,
                    guarded: bool) -> None:
        shared = self._shared(chain)
        if shared is not None:
            self.writes.setdefault(shared, []).append(
                (getattr(node, "lineno", 0), node, guarded))

    def _note_read(self, node: ast.AST, chain: str | None,
                   guarded: bool) -> None:
        shared = self._shared(chain)
        if shared is not None:
            self.reads.setdefault(shared, []).append(
                (getattr(node, "lineno", 0), node, guarded))

    # -- traversal ------------------------------------------------------
    def _walk(self, stmts, *, guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Global,
                                 ast.Nonlocal)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                locked = guarded
                for item in stmt.items:
                    self._scan_expr(item.context_expr, guarded)
                    if isinstance(stmt, ast.AsyncWith) and _is_lock_name(
                            _chain(item.context_expr)
                            or _call_chain(item.context_expr),
                            self.ctx.policy.lock_name_hints):
                        locked = True
                self._walk(stmt.body, guarded=locked)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, guarded)
                self._target_write(stmt.target, guarded)
                self._walk(stmt.body, guarded=guarded)
                self._walk(stmt.orelse, guarded=guarded)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._scan_expr(stmt.test, guarded)
                self._walk(stmt.body, guarded=guarded)
                self._walk(stmt.orelse, guarded=guarded)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, guarded=guarded)
                for handler in stmt.handlers:
                    self._walk(handler.body, guarded=guarded)
                self._walk(stmt.orelse, guarded=guarded)
                self._walk(stmt.finalbody, guarded=guarded)
            else:
                self._scan_stmt(stmt, guarded)

    def _scan_stmt(self, stmt: ast.stmt, guarded: bool) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._target_write(target, guarded)
            self._scan_expr(stmt.value, guarded)
            return
        if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            self._target_write(stmt.target, guarded)
            if stmt.value is not None:
                self._scan_expr(stmt.value, guarded)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._target_write(target, guarded)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, guarded)

    def _target_write(self, target: ast.AST, guarded: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target_write(elt, guarded)
            return
        if isinstance(target, ast.Starred):
            self._target_write(target.value, guarded)
            return
        if isinstance(target, ast.Subscript):
            self._note_write(target, _chain(target.value), guarded)
            self._scan_expr(target.slice, guarded)
            return
        self._note_write(target, _chain(target), guarded)

    def _scan_expr(self, expr: ast.AST, guarded: bool) -> None:
        skip: set[int] = set()
        for node in ast.walk(expr):
            if id(node) in skip:
                continue
            if isinstance(node, ast.Lambda):
                for sub in ast.walk(node):
                    if sub is not node:
                        skip.add(id(sub))
                continue
            if isinstance(node, ast.Await):
                self.awaits.append(node.lineno)
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute):
                chain = _chain(node.func.value)
                if node.func.attr in WRITE_METHODS:
                    self._note_write(node, chain, guarded)
                elif node.func.attr in self.ctx.policy.cache_read_calls:
                    self._note_read(node, chain, guarded)
            elif isinstance(node, ast.Compare) and any(
                    isinstance(op, (ast.In, ast.NotIn))
                    for op in node.ops):
                for operand in node.comparators:
                    self._note_read(operand, _chain(operand), guarded)


def _call_chain(node: ast.AST) -> str | None:
    """The chain of ``self.lock()``-style context factory calls."""
    if isinstance(node, ast.Call):
        return _chain(node.func)
    return None


def _async_defs(ctx: FileContext):
    for fn in ctx.functions():
        if isinstance(fn, ast.AsyncFunctionDef):
            yield fn


@register
class AwaitStraddledWrites(Rule):
    id = "RPR010"
    name = "await-straddled-writes"
    summary = ("shared mutable state (self.* / module global) written "
               "on both sides of an await without a lock in scope")
    rationale = ("an await is the only interleaving point in asyncio: "
                 "state half-updated across one is visible to every "
                 "other task; hold an async lock across the whole "
                 "update or finish it before suspending")

    def check(self, ctx: FileContext) -> None:
        if not ctx.policy.is_async_state_module(ctx.rel):
            return
        for fn in _async_defs(ctx):
            frame = _AsyncFrame(ctx, fn)
            if not frame.awaits:
                continue
            for chain, writes in sorted(frame.writes.items()):
                unguarded = sorted(w for w in writes if not w[2])
                if len(unguarded) < 2:
                    continue
                first = unguarded[0][0]
                for line, node, _ in unguarded[1:]:
                    if any(first < a < line for a in frame.awaits):
                        ctx.report(node, f"'{chain}' written on both "
                                   f"sides of an await in '{fn.name}' "
                                   f"without a lock; another task can "
                                   f"observe the half-updated state")
                        break


@register
class CheckThenActAcrossAwait(Rule):
    id = "RPR011"
    name = "check-then-act-across-await"
    summary = ("cache read (.get/membership) before an await, write "
               "(.put/.setdefault/store) after it, on the same chain")
    rationale = ("the checked answer is stale after the suspension: two "
                 "tasks miss the same key, both recompute, and the "
                 "second write silently clobbers the first — re-check "
                 "after resuming or hold a lock across check and act")

    def check(self, ctx: FileContext) -> None:
        if not ctx.policy.is_async_state_module(ctx.rel):
            return
        for fn in _async_defs(ctx):
            frame = _AsyncFrame(ctx, fn)
            if not frame.awaits:
                continue
            for chain, reads in sorted(frame.reads.items()):
                writes = sorted(
                    w for w in frame.writes.get(chain, ()) if not w[2])
                read_lines = [r[0] for r in reads if not r[2]]
                if not writes or not read_lines:
                    continue
                for line, node, _ in writes:
                    if any(r < a < line for r in read_lines
                           for a in frame.awaits):
                        ctx.report(node, f"check-then-act on '{chain}' "
                                   f"across an await in '{fn.name}': "
                                   f"the pre-await read is stale when "
                                   f"this write lands")
                        break
