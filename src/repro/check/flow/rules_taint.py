"""Dataflow upgrades of RPR001/RPR002: taint findings at the sinks.

The syntactic rules catch the *read* (``perf_counter()`` outside the
allowlist, a module-global RNG draw); these program rules catch the
*flow* — a host-clock or RNG value that crosses function boundaries and
lands in simulated-charge accounting or response bytes, which the
per-file rules cannot see (the read may be legal where it happens: the
service is allowed to measure latency, just not to serialize it).

Findings are emitted under the existing rule ids, so one suppression
channel covers an invariant whether it was caught syntactically or by
dataflow: ``# repro: noqa RPR001`` on the sink line works the same way.
"""

from __future__ import annotations

from .context import ProgramContext, ProgramRule, register_program
from .taint import CLOCK, RNG, UNORDERED, SinkHit


def _describe(hit: SinkHit) -> str:
    t = hit.taint
    origin = f"{t.origin} ({t.origin_rel}:{t.origin_line})"
    via = ""
    if t.via:
        hops = " -> ".join(k.rsplit(".", 1)[-1] for k in t.via)
        via = f" via {hops}"
    return f"{origin}{via} reaches {hit.sink}"


@register_program
class ClockFlow(ProgramRule):
    id = "RPR001F"
    name = "flow-clock-taint"
    summary = ("host-clock values flowing (interprocedurally) into "
               "charge-accounting calls or payload-producing sinks")
    rationale = ("a wall-clock read is allowed where measuring the host "
                 "is the job; a wall-clock *value* reaching simulated "
                 "charges or response bytes breaks the two-clock "
                 "contract no matter where it was read")
    emits = ("RPR001",)

    def check(self, program: ProgramContext) -> None:
        for hit in program.taint.hits_of(CLOCK):
            if hit.rel not in program.contexts:
                continue
            program.report(
                hit.rel, hit.node,
                f"wall-clock value from {_describe(hit)}; simulated "
                f"charges and payload bytes must not depend on the host "
                f"clock", rule="RPR001")


@register_program
class RngFlow(ProgramRule):
    id = "RPR002F"
    name = "flow-rng-taint"
    summary = ("nondeterministic RNG draws or unordered-iteration values "
               "flowing (interprocedurally) into payload bytes or "
               "accounting accumulation")
    rationale = ("an unseeded generator or set-order value that reaches "
                 "result bytes or a float sum makes identical runs "
                 "produce different outputs — the exact failure the "
                 "determinism contract exists to prevent")
    emits = ("RPR002",)

    def check(self, program: ProgramContext) -> None:
        for hit in program.taint.hits_of(RNG, UNORDERED):
            if hit.rel not in program.contexts:
                continue
            if hit.kind == UNORDERED and not hit.taint.via \
                    and hit.taint.origin_rel == hit.rel:
                # A set display feeding a sink inside one function is
                # the syntactic RPR002's case; re-reporting it here
                # would double every local finding.
                continue
            what = ("nondeterministic value" if hit.kind == RNG
                    else "hash-order-dependent value")
            program.report(
                hit.rel, hit.node,
                f"{what} from {_describe(hit)}; every run must be a "
                f"pure function of its seeds and arguments",
                rule="RPR002")
