"""Interprocedural analysis under the rule engine (`repro.check.flow`).

The per-file rules (:mod:`repro.check.rules`) see one module at a time;
this subpackage sees the whole checked tree at once:

* :mod:`~repro.check.flow.graph` builds a program-wide **call graph**
  with import-alias resolution (absolute *and* relative imports) and
  method attribution (``self.method()``, attribute types inferred from
  ``__init__`` assignments and annotations, bound-method calls);
* :mod:`~repro.check.flow.context` exposes it through
  :class:`ProgramContext` — the whole-program twin of
  :class:`repro.check.rules.FileContext`, with the same ~30-line
  rule-author contract (subclass :class:`ProgramRule`, call
  ``program.report(...)``);
* :mod:`~repro.check.flow.taint` runs a forward **taint analysis** over
  the graph (function summaries to fixpoint) with three built-in kinds:
  host-clock values, nondeterministic RNG draws, and unordered-iteration
  values — upgrading RPR001/RPR002/RPR003 from syntactic to
  dataflow-aware (:mod:`~repro.check.flow.rules_taint`);
* :mod:`~repro.check.flow.rules_async` (RPR010/RPR011) and
  :mod:`~repro.check.flow.rules_procs` (RPR012) guard the async and
  cross-process state of the serving layer.

Findings flow through the exact same suppress/baseline/CLI contract as
file-rule findings; see ``docs/static_analysis.md`` ("Interprocedural
analysis") for the taint kinds, the sink catalog, and rule semantics.
"""

from .context import (
    PROGRAM_RULES,
    ProgramContext,
    ProgramRule,
    build_program,
    register_program,
    run_program_rules,
)
from .graph import CallGraph, CallSite, FunctionInfo, build_graph
from .taint import Taint, TaintAnalysis

__all__ = [
    "CallGraph", "CallSite", "FunctionInfo", "PROGRAM_RULES",
    "ProgramContext", "ProgramRule", "Taint", "TaintAnalysis",
    "build_graph", "build_program", "register_program",
    "run_program_rules",
]
