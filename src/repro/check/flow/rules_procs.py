"""RPR012 — cross-process state: worker-side writes the parent reads.

The service executes batches in worker *processes* (``ShardPools`` →
``pool.submit(execute_batch, payload)``): a module global mutated inside
``execute_batch`` or anything it calls changes only the worker's copy of
the module.  If the parent process also reads that global, the two sides
silently disagree — the classic fork-state bug that no single-file rule
can see, because the write and the read are both individually innocent.

Detection is interprocedural: the worker-side set is every function
reachable (through call *and* submit edges) from the policy's
cross-process entry points; a finding is a mutation, inside that set, of
a module global defined in a cross-process state module, when at least
one *parent-side* (non-reachable) function reads the same global.
Worker-side **reads** are fine (config constants fan out at fork), and
globals the parent never looks at are worker-local scratch by
definition.
"""

from __future__ import annotations

import ast

from .context import ProgramContext, ProgramRule, register_program
from .graph import CallGraph, FunctionInfo, ModuleInfo

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "add", "clear", "extend", "update", "pop", "remove",
    "discard", "insert", "setdefault", "popitem", "appendleft",
    "push", "put", "inc", "dec", "set",
})


def _own_nodes(fn: FunctionInfo):
    """Nodes lexically inside ``fn`` but not inside a nested def/class."""
    skip: set[int] = set()
    for node in ast.walk(fn.node):
        if node is fn.node:
            continue
        if id(node) in skip:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            for sub in ast.walk(node):
                skip.add(id(sub))
            continue
        yield node


def _declared_globals(fn: FunctionInfo) -> set[str]:
    return {name for node in _own_nodes(fn)
            if isinstance(node, ast.Global) for name in node.names}


def _bound_names(target: ast.AST) -> set:
    """Names a target expression *binds* — a subscript/attribute store
    mutates its base object but binds nothing."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set = set()
        for elt in target.elts:
            out |= _bound_names(elt)
        return out
    if isinstance(target, ast.Starred):
        return _bound_names(target.value)
    return set()


def _locals_of(fn: FunctionInfo) -> set:
    """Names bound locally (params + plain assignments, sans ``global``)."""
    out = set(fn.params)
    for node in _own_nodes(fn):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = [node.target]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            targets = [i.optional_vars for i in node.items
                       if i.optional_vars is not None]
        elif isinstance(node, ast.comprehension):
            targets = [node.target]
        for t in targets:
            out |= _bound_names(t)
    return out - _declared_globals(fn)


def _mutations(fn: FunctionInfo, mod: ModuleInfo):
    """``(node, name)`` for each module-global mutation inside ``fn``."""
    declared = _declared_globals(fn)
    local = _locals_of(fn)

    def is_global(name: str) -> bool:
        return name in mod.globals and (name in declared
                                        or name not in local)

    for node in _own_nodes(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if isinstance(t, ast.Name) and t.id in declared \
                        and t.id in mod.globals:
                    yield node, t.id
                elif isinstance(t, ast.Subscript) and isinstance(
                        t.value, ast.Name) and is_global(t.value.id):
                    yield node, t.value.id
        elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute) \
                and node.func.attr in MUTATOR_METHODS \
                and isinstance(node.func.value, ast.Name) \
                and is_global(node.func.value.id):
            yield node, node.func.value.id


def _read_globals(fn: FunctionInfo, mod: ModuleInfo) -> set[str]:
    """Module globals ``fn`` reads (Load refs not shadowed by a local)."""
    local = _locals_of(fn)
    return {node.id for node in _own_nodes(fn)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in mod.globals and node.id not in local}


def _entry_keys(graph: CallGraph, policy) -> set[str]:
    entries = {fn.key for fn in graph.functions.values()
               if fn.leaf in policy.cross_process_entries}
    entries |= {site.callee for site in graph.submitted()
                if site.callee is not None}
    return entries


@register_program
class CrossProcessState(ProgramRule):
    id = "RPR012"
    name = "cross-process-state"
    summary = ("module globals mutated in worker-process callees "
               "(execute_batch and friends) that the parent also reads")
    rationale = ("a worker process mutates its own copy of the module; "
                 "the parent's reader sees the pre-fork value forever — "
                 "return state in the worker's result payload instead "
                 "of mutating globals")

    def check(self, program: ProgramContext) -> None:
        graph = program.graph
        policy = program.policy
        reachable = graph.reachable_from(_entry_keys(graph, policy))
        reader_sets: dict[str, dict[str, set[str]]] = {}
        for key in sorted(reachable):
            fn = graph.functions[key]
            mod = graph.modules[fn.module]
            if fn.qualname == "<module>" \
                    or not policy.is_cross_process_state_module(mod.rel):
                continue
            if fn.module not in reader_sets:
                reader_sets[fn.module] = {
                    other.key: _read_globals(other, mod)
                    for other in mod.functions.values()
                    if other.key not in reachable
                    and other.qualname != "<module>"}
            for node, name in _mutations(fn, mod):
                readers = [
                    graph.functions[k]
                    for k, names in reader_sets[fn.module].items()
                    if name in names]
                if not readers:
                    continue
                reader = sorted(readers, key=lambda f: f.lineno)[0]
                program.report(
                    mod.rel, node,
                    f"module global '{name}' ({mod.rel}:"
                    f"{mod.globals[name]}) is mutated in the worker "
                    f"process (reachable from "
                    f"{'/'.join(sorted(policy.cross_process_entries))}) "
                    f"but read by parent-side '{reader.qualname}'; the "
                    f"parent never sees this write")
