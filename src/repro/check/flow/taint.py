"""Forward taint analysis over the call graph.

Three taint kinds, matching the repo's determinism contract:

* ``clock`` — a value derived from a host-clock read
  (:data:`repro.check.rules_clock.BANNED_CLOCKS`).  Reaching a
  charge-accounting call or a payload-producing sink means wall time
  leaks into simulated charges or response bytes.
* ``rng`` — a value derived from nondeterministic randomness: the
  module-global ``random``/legacy ``numpy.random`` state, an *unseeded*
  ``random.Random()`` or ``numpy.random.default_rng`` with no seed
  argument, ``os.urandom``,
  ``uuid.uuid4``, ``secrets.*``.  Reaching a payload sink means response
  bytes differ between identical runs.
* ``unordered`` — a value whose iteration order depends on the hash
  seed (``set``/``frozenset`` displays, comprehensions, constructors).
  Reaching float accumulation in an accounting path or a canonical
  serialization changes simulated charges / bytes between interpreter
  runs.  ``sorted()``, ``len()``, ``min()``, ``max()`` sanitize it.

The analysis is interprocedural and context-insensitive: per-function
summaries (return taints, plus per-literal-key taints for returned
dicts) and per-parameter input taints (unioned over every call site) are
iterated to a fixpoint over the call graph, then one collection pass
records :class:`SinkHit`\\ s.  Dict stores are **key-sensitive** —
``entry["wall"] = perf_counter() - t0`` taints only ``entry["wall"]``,
not values read through other keys — because host-side wall accounting
legitimately travels next to payload data in the service's batch
entries; only serializing the *whole* dict pulls key taints back in.

Taints carry their origin (file, line, source name) and a capped
``via`` chain of the functions they flowed through, so findings read as
a dataflow story rather than a bare sink location.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from ..policy import CheckPolicy
from ..rules_clock import BANNED_CLOCKS
from ..rules_rng import NP_RANDOM_OK
from .graph import SUBMIT_LEAFS, CallGraph, FunctionInfo, dotted_name

__all__ = ["CLOCK", "RNG", "UNORDERED", "UNORDERED_ELEM", "SinkHit",
           "Taint", "TaintAnalysis", "Val"]

CLOCK = "clock"
RNG = "rng"
UNORDERED = "unordered"
#: A value *drawn from* unordered iteration (a set element).  The value
#: itself is deterministic — only the sequence it arrived in is not —
#: so it matters to order-sensitive accumulation, never to serializing
#: the single value.
UNORDERED_ELEM = "unordered_elem"

#: Calls that are nondeterministic regardless of arguments.
RNG_ALWAYS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: Builtins whose result does not depend on the argument's iteration
#: order — they sanitize ``unordered`` (other taints pass through).
ORDER_INSENSITIVE = frozenset({"sorted", "len", "min", "max"})

#: Method names that mutate their receiver with their arguments.
MUTATORS = frozenset({
    "append", "add", "extend", "update", "insert", "setdefault",
    "appendleft", "push", "put", "set",
})

#: Cap on the recorded flow chain; keeps taints finite under recursion.
VIA_CAP = 6

MAX_FIXPOINT_ITERS = 12


@dataclass(frozen=True)
class Taint:
    """One tainted provenance: what was read, where, and the path here."""

    kind: str                # CLOCK | RNG | UNORDERED
    origin: str              # the source expression, e.g. "time.perf_counter"
    origin_rel: str
    origin_line: int
    via: tuple[str, ...] = ()   # function keys the value flowed through

    def through(self, fn_key: str) -> "Taint":
        if fn_key in self.via or len(self.via) >= VIA_CAP:
            return self
        return replace(self, via=self.via + (fn_key,))


@dataclass
class Val:
    """The abstract value of an expression: taints, plus per-key taints
    for dicts assembled/stored with literal string keys."""

    taints: set = field(default_factory=set)
    keys: dict = field(default_factory=dict)   # str -> set[Taint]

    def all_taints(self) -> set:
        out = set(self.taints)
        for ts in self.keys.values():
            out |= ts
        return out

    def merged(self, other: "Val") -> "Val":
        keys = {k: set(v) for k, v in self.keys.items()}
        for k, v in other.keys.items():
            keys.setdefault(k, set()).update(v)
        return Val(self.taints | other.taints, keys)


def _flat(vals) -> set:
    out: set = set()
    for v in vals:
        out |= v.all_taints()
    return out


def _weaken(taints) -> set:
    """Collection-order taint -> element taint (drawn from iteration)."""
    return {replace(t, kind=UNORDERED_ELEM) if t.kind == UNORDERED else t
            for t in taints}


@dataclass
class SinkHit:
    """A tainted value reaching a sink: the raw material of a finding."""

    kind: str
    rel: str
    node: ast.AST
    sink: str              # dotted sink name, or "augmented accumulation"
    taint: Taint
    fn_key: str


@dataclass
class _Summary:
    returns: set = field(default_factory=set)
    return_keys: dict = field(default_factory=dict)  # str -> set[Taint]

    def snapshot(self):
        return (frozenset(self.returns),
                tuple(sorted((k, frozenset(v))
                             for k, v in self.return_keys.items())))


class TaintAnalysis:
    """Run the fixpoint, then expose :attr:`hits` and helpers."""

    def __init__(self, graph: CallGraph, policy: CheckPolicy) -> None:
        self.graph = graph
        self.policy = policy
        self.summaries: dict[str, _Summary] = {
            key: _Summary() for key in graph.functions}
        self.param_in: dict[str, dict[str, Val]] = {
            key: {} for key in graph.functions}
        self.hits: list[SinkHit] = []

    # ------------------------------------------------------------------
    def run(self) -> None:
        order = sorted(self.graph.functions)
        for _ in range(MAX_FIXPOINT_ITERS):
            before = self._state_snapshot()
            for key in order:
                self._eval_function(self.graph.functions[key], collect=False)
            if self._state_snapshot() == before:
                break
        self.hits = []
        for key in order:
            self._eval_function(self.graph.functions[key], collect=True)
        self._dedupe_hits()

    def hits_of(self, *kinds: str) -> list[SinkHit]:
        return [h for h in self.hits if h.kind in kinds]

    def _state_snapshot(self):
        return (
            tuple(self.summaries[k].snapshot()
                  for k in sorted(self.summaries)),
            tuple((k, tuple(sorted(
                (p, frozenset(v.all_taints()))
                for p, v in self.param_in[k].items())))
                for k in sorted(self.param_in)),
        )

    def _dedupe_hits(self) -> None:
        seen: set = set()
        out: list[SinkHit] = []
        for h in sorted(self.hits, key=lambda h: (
                h.rel, getattr(h.node, "lineno", 0), h.kind,
                h.taint.origin, h.taint.origin_line)):
            key = (h.rel, getattr(h.node, "lineno", 0), h.kind, h.sink,
                   h.taint.origin, h.taint.origin_rel, h.taint.origin_line)
            if key not in seen:
                seen.add(key)
                out.append(h)
        self.hits = out

    # ------------------------------------------------------------------
    def _eval_function(self, fn: FunctionInfo, *, collect: bool) -> None:
        mod = self.graph.modules[fn.module]
        sites = {id(s.node): s for s in self.graph.callees_of(fn.key)
                 if s.kind == "call"}
        submits = {id(s.node): s for s in self.graph.callees_of(fn.key)
                   if s.kind == "submit"}
        env: dict[str, Val] = {}
        for name, val in self.param_in[fn.key].items():
            env[name] = val.merged(Val())
        body = fn.node.body if hasattr(fn.node, "body") else []
        runner = _FunctionRun(self, fn, mod, sites, submits, env, collect)
        # Two passes settle loop-carried locals; sinks collect on the last.
        runner.collect = False
        runner.exec_block(body)
        runner.collect = collect
        runner.exec_block(body)
        summary = self.summaries[fn.key]
        summary.returns |= {t.through(fn.key) for t in runner.returns}
        for k, ts in runner.return_keys.items():
            summary.return_keys.setdefault(k, set()).update(
                t.through(fn.key) for t in ts)

    def _record_param_flow(self, callee_key: str, params: tuple[str, ...],
                           skip_self: bool, args, keywords) -> None:
        slots = self.param_in[callee_key]
        names = params[1:] if skip_self and params \
            and params[0] in ("self", "cls") else params
        for i, val in enumerate(args):
            if i < len(names):
                slots[names[i]] = slots.get(names[i], Val()).merged(val)
        for kw, val in keywords:
            if kw in params:
                slots[kw] = slots.get(kw, Val()).merged(val)


class _FunctionRun:
    """One flow-insensitive interpretation of a function body."""

    def __init__(self, analysis: TaintAnalysis, fn: FunctionInfo, mod,
                 sites, submits, env: dict[str, Val],
                 collect: bool) -> None:
        self.an = analysis
        self.fn = fn
        self.mod = mod
        self.sites = sites
        self.submits = submits
        self.env = env
        self.collect = collect
        self.exempt = analysis.policy.is_taint_exempt(mod.rel)
        self.returns: set = set()
        self.return_keys: dict = {}

    # -- statements -----------------------------------------------------
    def exec_block(self, stmts) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # separate graph nodes
        if isinstance(stmt, ast.Assign):
            val = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, val)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.assign(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            val = self.eval(stmt.value)
            slot = self._slot(stmt.target)
            cur = self.env.get(slot, Val()) if slot else Val()
            merged = cur.merged(val)
            if slot:
                self.env[slot] = merged
            if self.collect and isinstance(stmt.op, (ast.Add, ast.Sub,
                                                     ast.Mult)):
                self._accumulation_sink(stmt, val)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                val = self.eval(stmt.value)
                self.returns |= val.taints
                for k, ts in val.keys.items():
                    self.return_keys.setdefault(k, set()).update(ts)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            it = self.eval(stmt.iter)
            self.assign(stmt.target, Val(_weaken(it.taints)))
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.If)):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                val = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, val)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        elif isinstance(stmt, ast.Delete):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
                elif isinstance(child, ast.stmt):
                    self.exec_stmt(child)

    # -- assignment targets ---------------------------------------------
    def _slot(self, target: ast.AST) -> str | None:
        """The env slot a simple target writes: name or ``self.attr``."""
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name) and target.value.id in ("self",
                                                                "cls"):
            return f"{target.value.id}.{target.attr}"
        return None

    def assign(self, target: ast.AST, val: Val) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            spread = Val(val.all_taints())
            for elt in target.elts:
                self.assign(elt, spread)
            return
        if isinstance(target, ast.Subscript):
            base_slot = self._slot(target.value)
            if base_slot is None:
                return
            base = self.env.setdefault(base_slot, Val())
            key = _literal_key(target.slice)
            if key is not None:
                base.keys.setdefault(key, set()).update(val.all_taints())
            else:
                base.taints |= val.all_taints()
            return
        if isinstance(target, ast.Starred):
            self.assign(target.value, val)
            return
        slot = self._slot(target)
        if slot is not None:
            self.env[slot] = val

    # -- expressions ----------------------------------------------------
    def eval(self, node: ast.AST | None) -> Val:
        if node is None or isinstance(node, ast.Constant):
            return Val()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, Val())
        if isinstance(node, ast.Attribute):
            slot = self._slot(node)
            if slot is not None and slot in self.env:
                return self.env[slot]
            base = self.eval(node.value)
            return Val(set(base.taints))
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            self.eval(node.slice)
            key = _literal_key(node.slice)
            if key is not None:
                return Val(set(base.taints) | set(base.keys.get(key, ())))
            return Val(base.all_taints())
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            if isinstance(node, ast.SetComp):
                inner = self._comp_taints(node)
            else:
                inner = _flat(self.eval(c)
                              for c in ast.iter_child_nodes(node)
                              if isinstance(c, ast.expr))
            return Val(inner | self._sources(UNORDERED, "set display",
                                             node))
        if isinstance(node, ast.Dict):
            out = Val()
            for key_node, value in zip(node.keys, node.values):
                vval = self.eval(value)
                if key_node is None:            # ** expansion
                    out = out.merged(vval)
                    continue
                self.eval(key_node)
                key = _literal_key(key_node)
                if key is not None:
                    out.keys.setdefault(key, set()).update(
                        vval.all_taints())
                else:
                    out.taints |= vval.all_taints()
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            return Val(self._comp_taints(node))
        if isinstance(node, (ast.List, ast.Tuple)):
            return Val(_flat(self.eval(e) for e in node.elts))
        if isinstance(node, ast.Lambda):
            return Val()
        if isinstance(node, (ast.Await, ast.Starred, ast.NamedExpr,
                             ast.UnaryOp, ast.FormattedValue)):
            child = (node.value if not isinstance(node, ast.UnaryOp)
                     else node.operand)
            val = self.eval(child)
            if isinstance(node, ast.NamedExpr):
                self.assign(node.target, val)
            return val if isinstance(node, (ast.Await, ast.NamedExpr)) \
                else Val(val.all_taints())
        # BinOp, BoolOp, Compare, IfExp, JoinedStr, Slice, ...
        return Val(_flat(self.eval(c) for c in ast.iter_child_nodes(node)
                         if isinstance(c, ast.expr)))

    def _comp_taints(self, node) -> set:
        taints: set = set()
        for gen in node.generators:
            it = self.eval(gen.iter).all_taints()
            taints |= it
            self.assign(gen.target, Val(_weaken(it)))
            for cond in gen.ifs:
                taints |= self.eval(cond).all_taints()
        for attr in ("elt", "key", "value"):
            sub = getattr(node, attr, None)
            if sub is not None:
                taints |= self.eval(sub).all_taints()
        return taints

    # -- calls ----------------------------------------------------------
    def eval_call(self, node: ast.Call) -> Val:
        args = [self.eval(a) for a in node.args]
        keywords = [(kw.arg, self.eval(kw.value)) for kw in node.keywords]
        arg_taints = _flat(args) | _flat(v for _, v in keywords)
        name = dotted_name(node.func, self.mod.aliases)
        leaf = name.rsplit(".", 1)[-1] if name else ""

        base_val = Val()
        if isinstance(node.func, ast.Attribute):
            base_val = self.eval(node.func.value)
            if leaf in MUTATORS:
                slot = self._slot(node.func.value)
                if slot is not None:
                    self.env.setdefault(slot, Val()).taints |= arg_taints

        src = self._call_source(node, name, args, keywords)
        if src is not None:
            return Val({src} | arg_taints)

        if name in ("set", "frozenset"):
            return Val(arg_taints | self._sources(
                UNORDERED, f"{name}()", node))
        if leaf in ORDER_INSENSITIVE and name == leaf:
            kept = {t for t in arg_taints
                    if t.kind not in (UNORDERED, UNORDERED_ELEM)}
            return Val(kept)

        if self.collect:
            self._call_sinks(node, name, leaf, args, keywords)

        if leaf in SUBMIT_LEAFS:
            submitted = self._submit_flow(node, args)
            if submitted is not None:
                return submitted

        site = self.sites.get(id(node))
        if site is not None and site.callee in self.an.summaries:
            callee = self.an.graph.functions[site.callee]
            self.an._record_param_flow(
                site.callee, callee.params,
                skip_self=callee.class_name is not None, args=args,
                keywords=keywords)
            summary = self.an.summaries[site.callee]
            out = Val(set(summary.returns))
            for k, ts in summary.return_keys.items():
                out.keys[k] = set(ts)
            # A draw from a tainted receiver stays tainted even when the
            # method itself resolves (generator objects travel).
            out.taints |= base_val.taints
            return out

        # Unresolved call: taint flows through (str(), float(), helpers
        # outside the tree) and a method call on a tainted receiver
        # yields a tainted result (rng.random(), gen.integers(...)).
        # A single-argument wrapper (wrap_future, list, deepcopy) passes
        # the value through whole, keyed structure included.
        if len(args) == 1 and not keywords and not base_val.taints:
            return args[0]
        return Val(arg_taints | set(base_val.taints))

    def _submit_flow(self, node: ast.Call, args) -> Val | None:
        """Flow a ``submit(fn, *rest)`` call: ``rest`` enters ``fn``'s
        parameters, and the future's value is ``fn``'s return summary."""
        out: Val | None = None
        for i, arg_node in enumerate(node.args):
            site = self.submits.get(id(arg_node))
            if site is None or site.callee not in self.an.summaries:
                continue
            callee = self.an.graph.functions[site.callee]
            self.an._record_param_flow(
                site.callee, callee.params,
                skip_self=callee.class_name is not None,
                args=args[i + 1:], keywords=[])
            summary = self.an.summaries[site.callee]
            res = Val(set(summary.returns))
            for k, ts in summary.return_keys.items():
                res.keys[k] = set(ts)
            out = res if out is None else out.merged(res)
        return out

    def _call_source(self, node: ast.Call, name: str | None, args,
                     keywords) -> Taint | None:
        if name is None or self.exempt:
            return None
        if name in BANNED_CLOCKS:
            return self._source(CLOCK, name, node)
        if name in RNG_ALWAYS or name.split(".")[0] == "secrets":
            return self._source(RNG, name, node)
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random":
                if not node.args and not node.keywords:
                    return self._source(RNG, "unseeded random.Random()",
                                        node)
                return None
            if parts[1] in ("seed", "getstate", "setstate"):
                return None
            return self._source(RNG, name, node)   # module-global draw
        if parts[:2] == ["numpy", "random"] and len(parts) == 3:
            if parts[2] == "default_rng":
                if not node.args and not node.keywords:
                    return self._source(
                        RNG, "unseeded numpy.random.default_rng "
                             "call", node)
                return None
            if parts[2] not in NP_RANDOM_OK:
                return self._source(RNG, name, node)  # legacy global draw
        return None

    def _source(self, kind: str, origin: str, node: ast.AST) -> Taint:
        return Taint(kind=kind, origin=origin, origin_rel=self.mod.rel,
                     origin_line=getattr(node, "lineno", 0))

    def _sources(self, kind: str, origin: str, node: ast.AST) -> set:
        """A one-taint set, or empty in a taint-exempt module: values a
        by-design wall-clock/telemetry module produces are sanctioned
        wherever they land."""
        if self.exempt:
            return set()
        return {self._source(kind, origin, node)}

    # -- sinks ----------------------------------------------------------
    def _call_sinks(self, node: ast.Call, name: str | None, leaf: str,
                    args, keywords) -> None:
        if name is None or self.an.policy.is_taint_exempt(self.mod.rel):
            return
        policy = self.an.policy
        arg_vals = args + [v for _, v in keywords]
        if leaf in policy.charge_calls:
            for t in _flat(arg_vals):
                if t.kind == CLOCK:
                    self._hit(CLOCK, node, name, t)
        if name in policy.taint_payload_sinks \
                or leaf in policy.taint_payload_sinks:
            for val in arg_vals:
                for t in val.all_taints():   # serialization reads keys too
                    if t.kind != UNORDERED_ELEM:  # one element is fine
                        self._hit(t.kind, node, name, t)
        if name in ("sum", "math.fsum") \
                and policy.in_accounting_path(self.mod.rel):
            for t in _flat(args):
                if t.kind in (UNORDERED, UNORDERED_ELEM):
                    self._hit(UNORDERED, node, name, t)

    def _accumulation_sink(self, stmt: ast.AugAssign, val: Val) -> None:
        policy = self.an.policy
        if policy.is_taint_exempt(self.mod.rel) \
                or not policy.in_accounting_path(self.mod.rel):
            return
        for t in val.all_taints():
            if t.kind in (UNORDERED, UNORDERED_ELEM):
                self._hit(UNORDERED, stmt, "augmented accumulation", t)

    def _hit(self, kind: str, node: ast.AST, sink: str, taint: Taint,
             ) -> None:
        self.an.hits.append(SinkHit(kind=kind, rel=self.mod.rel, node=node,
                                    sink=sink, taint=taint,
                                    fn_key=self.fn.key))


def _literal_key(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_set_literalish(node: ast.AST, aliases: dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func, aliases) in ("set", "frozenset")
    return False
