"""RPR005 — fork-safety of campaign workers.

Everything submitted through :mod:`repro.parallel` (or directly to a
process pool) crosses a pickle boundary and runs in a worker that shares
nothing with the parent.  Two statically visible ways to break the
determinism/mergability contract:

* **closures** — a ``lambda`` or nested def passed as the worker either
  fails to pickle (loudly, at best) or drags captured state across the
  fork; workers must be module-level functions of their explicit item.
* **module-global mutation** — a worker that writes module globals
  (``global`` statement) produces side effects that exist only in the
  worker process under ``--jobs N`` but leak into shared state under
  ``--jobs 1``, so results depend on the jobs value.
"""

from __future__ import annotations

import ast

from .rules import FileContext, Rule, register


@register
class ForkSafety(Rule):
    id = "RPR005"
    name = "fork-safety"
    summary = ("lambda/nested-function workers, or workers mutating "
               "module globals, submitted to the process-pool engine")
    rationale = ("workers cross a pickle boundary; results must be a pure "
                 "function of the submitted item for every --jobs value "
                 "(docs/verification.md)")

    def check(self, ctx: FileContext) -> None:
        if ctx.policy.is_parallel_engine(ctx.rel):
            return
        module_fns = {fn.name: fn for fn in ctx.tree.body
                      if isinstance(fn, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))}
        for node, name in ctx.calls():
            short = name.split(".")[-1]
            if short not in ctx.policy.parallel_submit_calls:
                continue
            if not node.args:
                continue
            worker = node.args[0]
            if isinstance(worker, ast.Lambda):
                ctx.report(worker, f"lambda submitted to {short}(); workers "
                                   f"must be module-level (picklable) "
                                   f"functions")
            elif isinstance(worker, ast.Name):
                fn = module_fns.get(worker.id)
                if fn is None and ctx.enclosing_function(node) is not None:
                    fn = _nested_def(ctx, node, worker.id)
                    if fn is not None:
                        ctx.report(worker, f"nested function "
                                           f"{worker.id}() submitted to "
                                           f"{short}(); closures do not "
                                           f"pickle — hoist it to module "
                                           f"level")
                        continue
                if fn is not None and _mutates_globals(fn):
                    ctx.report(worker, f"worker {worker.id}() mutates "
                                       f"module globals; workers must be "
                                       f"pure functions of their item")


def _nested_def(ctx: FileContext, call: ast.AST, name: str):
    """The def named ``name`` nested in a function enclosing ``call``."""
    scope = ctx.enclosing_function(call)
    while scope is not None:
        for node in ast.walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == name and node is not scope:
                return node
        scope = ctx.enclosing_function(scope)
    return None


def _mutates_globals(fn: ast.AST) -> bool:
    return any(isinstance(node, ast.Global) for node in ast.walk(fn))
