"""Rule base class, registry, and the per-file analysis context.

Authoring a rule is ~30 lines: subclass :class:`Rule`, set ``id`` /
``name`` / ``summary`` / ``rationale``, implement ``check(ctx)`` calling
``ctx.report(node, message)`` for each violation, and decorate with
``@register``.  The context pre-computes the things every rule needs —
the parsed tree, an import-alias map that canonicalises dotted call names
(``from time import perf_counter as pc`` makes ``pc()`` resolve to
``time.perf_counter``), parent links, and the enclosing-function index —
so rules stay declarative.

See ``docs/static_analysis.md`` for the authoring walkthrough.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .findings import Finding
from .policy import CheckPolicy

#: The process-wide rule registry, ordered by registration.
RULES: dict[str, "Rule"] = {}  # repro: noqa RPR004 -- import-time rule registry of fixed size, not a runtime cache


def register(cls):
    """Class decorator adding a rule (by instance) to :data:`RULES`."""
    rule = cls()
    if not rule.id or rule.id in RULES:
        raise ValueError(f"rule id {rule.id!r} missing or already taken")
    RULES[rule.id] = rule
    return cls


class Rule:
    """One named, suppressible invariant."""

    id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, ctx: "FileContext") -> None:  # pragma: no cover
        raise NotImplementedError

    def describe(self) -> dict:
        return {"id": self.id, "name": self.name, "summary": self.summary,
                "rationale": self.rationale}


@dataclass
class FileContext:
    """Everything a rule needs to analyse one file."""

    rel: str                      # POSIX path relative to the checked root
    source: str
    tree: ast.Module
    policy: CheckPolicy
    lines: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    _rule: Rule | None = None
    _aliases: dict[str, str] = field(default_factory=dict)
    _parents: dict[int, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        self._aliases = _import_aliases(self.tree)
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # -- reporting ------------------------------------------------------
    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        src = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        assert self._rule is not None
        self.findings.append(Finding(
            path=self.rel, line=line, col=col,
            rule=self._rule.id, message=message, source=src,
        ))

    # -- name resolution ------------------------------------------------
    def dotted(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        Resolves through the module's import aliases: with ``import numpy
        as np``, the expression ``np.random.rand`` yields
        ``"numpy.random.rand"``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self._aliases.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def calls(self):
        """Yield ``(call_node, dotted_name)`` for every resolvable call."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                name = self.dotted(node.func)
                if name is not None:
                    yield node, name

    # -- structure helpers ----------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def enclosing_function(self, node: ast.AST):
        """The nearest enclosing def/lambda, or ``None`` at module scope."""
        cur = self.parent(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                return cur
            cur = self.parent(cur)
        return None

    def functions(self):
        """Every def in the file (module-level, methods, and nested)."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def module_level(self, node: ast.AST) -> bool:
        """True when the statement executes at import time, outside defs."""
        return self.enclosing_function(node) is None


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for a in node.names:
                if a.name != "*":
                    aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def run_rules(ctx: FileContext, select=None) -> list[Finding]:
    """Run the registered rules (optionally a subset) over one file."""
    for rule in RULES.values():
        if select and rule.id not in select:
            continue
        ctx._rule = rule
        rule.check(ctx)
    ctx._rule = None
    return ctx.findings
