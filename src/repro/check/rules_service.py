"""RPR007 — event-loop purity of the query service.

The asyncio service (:mod:`repro.service`) promises that its event loop
only plans, keys, caches, and evaluates already-encoded answers; every
simulated run crosses into a shard worker through ``pool.submit``.  A
blocking driver call *inside an async handler* freezes the whole serving
loop for the duration of a simulated run — every concurrent client
stalls, latency percentiles collapse, and nothing fails loudly (the
answers stay correct, which is why a static rule is needed).

The rule flags, inside service modules only
(:attr:`~repro.check.policy.CheckPolicy.service_modules`):

* **blocking driver calls in async functions** — any call whose resolved
  name is in
  :attr:`~repro.check.policy.CheckPolicy.service_blocking_calls`
  (drivers, the batch/driver entry points, the campaign engine, ops
  sorts) lexically inside an ``async def``.  Passing the callable to an
  executor (``pool.submit(execute_batch, payload)``) is legal — the rule
  matches *calls*, not references;
* **synchronous sleeps in async functions** — ``time.sleep`` in a
  handler blocks the loop the same way (use ``asyncio.sleep``).

Synchronous helpers in the same modules may call drivers freely (that is
what the workers do); the rule keys on the *enclosing async frame*, so a
nested sync ``def`` inside an ``async def`` is still flagged — the loop
runs it just the same.
"""

from __future__ import annotations

import ast

from .rules import FileContext, Rule, register

#: Names that block the loop regardless of the driver list.
_SYNC_SLEEPS = {"time.sleep"}


@register
class ServiceLoopPurity(Rule):
    id = "RPR007"
    name = "service-loop-purity"
    summary = ("blocking driver code (or time.sleep) called inside an "
               "async service handler instead of a shard worker")
    rationale = ("the serving loop must only plan/cache/answer; a driver "
                 "call on the loop stalls every concurrent client for a "
                 "whole simulated run (docs/service.md) — runs belong in "
                 "shard workers via pool.submit")

    def check(self, ctx: FileContext) -> None:
        if not ctx.policy.is_service_module(ctx.rel):
            return
        blocking = set(ctx.policy.service_blocking_calls)
        for node, name in ctx.calls():
            leaf = name.rsplit(".", 1)[-1]
            if name in _SYNC_SLEEPS:
                if _in_async_frame(ctx, node):
                    ctx.report(node, "time.sleep() blocks the event loop; "
                                     "use asyncio.sleep() in handlers")
            elif leaf in blocking and _in_async_frame(ctx, node):
                ctx.report(node, f"blocking driver call {leaf}() inside an "
                                 f"async handler; submit it to a shard "
                                 f"worker pool instead (the loop must "
                                 f"never run a simulated run)")


def _in_async_frame(ctx: FileContext, node: ast.AST) -> bool:
    """True when the *loop* would execute ``node``.

    Walks the enclosing-function chain: a hit on an ``async def`` before
    hitting module scope means the call runs on the loop.  Plain ``def``
    frames do not stop the walk — a sync helper nested in an async
    handler still executes on the loop when the handler calls it, and
    flagging at its definition site keeps the finding next to the code.
    """
    fn = ctx.enclosing_function(node)
    while fn is not None:
        if isinstance(fn, ast.AsyncFunctionDef):
            return True
        fn = ctx.enclosing_function(fn)
    return False
