"""Parallel prefix, semigroup, and broadcast (Section 2.6).

All three are built from lockstep *recursive-doubling* rounds: at round
``r`` every slot communicates with the slot ``2^r`` ranks away.  Summing the
per-round costs gives ``Theta(sqrt(n))`` on the mesh and ``Theta(log n)`` on
the hypercube — the first three rows of Table 1.

Segmented variants take a ``segments`` array of group ids (constant on each
string of PEs); combining never crosses a segment boundary, which is how the
paper performs operations "in parallel within multiple strings".
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import OperationContractError
from ..machines.machine import Machine
from ..trace.tracer import trace_span
from . import plans as _plans
from . import vexec as _vexec
from ._common import check_power_of_two

__all__ = ["parallel_prefix", "parallel_suffix", "semigroup", "broadcast",
           "fill_forward", "fill_backward"]


def _check(machine: Machine, values: np.ndarray,
           segments: np.ndarray | None) -> int:
    length = len(values)
    check_power_of_two(length)
    if segments is not None and len(segments) != length:
        raise OperationContractError("segments must match value length")
    return length


def parallel_prefix(
    machine: Machine,
    values: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    segments: np.ndarray | None = None,
) -> np.ndarray:
    """Inclusive prefix ``p_i = x_1 * ... * x_i`` under associative ``op``.

    ``op`` must be vectorised over NumPy arrays (use ``np.frompyfunc`` to
    lift a scalar Python operator, including ones over object arrays).
    Returns a new array; cost is one doubling sweep.
    """
    vals = np.array(values, copy=True)
    length = _check(machine, vals, segments)
    fused = _plans.compiled_plans_enabled()
    with trace_span("parallel_prefix", machine.metrics, n=length):
        d, bit = 1, 0
        while d < length:
            combined = op(vals[:-d], vals[d:])
            if segments is not None:
                same = segments[d:] == segments[:-d]
                vals[d:] = np.where(same, combined, vals[d:])
            else:
                vals[d:] = combined
            if not fused:
                machine.exchange(length, bit)
            d <<= 1
            bit += 1
        if fused:
            machine.doubling_sweep(length)
    return vals


def parallel_suffix(
    machine: Machine,
    values: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    segments: np.ndarray | None = None,
) -> np.ndarray:
    """Inclusive suffix scan (prefix from the right)."""
    vals = np.array(values, copy=True)
    length = _check(machine, vals, segments)
    fused = _plans.compiled_plans_enabled()
    with trace_span("parallel_suffix", machine.metrics, n=length):
        d, bit = 1, 0
        while d < length:
            combined = op(vals[:-d], vals[d:])
            if segments is not None:
                same = segments[d:] == segments[:-d]
                vals[:-d] = np.where(same, combined, vals[:-d])
            else:
                vals[:-d] = combined
            if not fused:
                machine.exchange(length, bit)
            d <<= 1
            bit += 1
        if fused:
            machine.doubling_sweep(length)
    return vals


def semigroup(
    machine: Machine,
    values: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    segments: np.ndarray | None = None,
) -> np.ndarray:
    """Apply an associative, commutative ``op`` over each segment.

    Returns an array carrying the segment total in *every* slot of the
    segment (all-reduce style), which is what the algorithms consume.
    Unsegmented: a butterfly of ``log n`` exchange rounds.  Segmented:
    a prefix sweep followed by a backward fill.
    """
    vals = np.array(values, copy=True)
    length = _check(machine, vals, segments)
    if segments is None:
        with trace_span("semigroup", machine.metrics, n=length):
            if _plans.compiled_plans_enabled():
                partners = _plans.get_butterfly_partners(machine, length)
                if vals.dtype == object and \
                        _plans.get_executor() == "vectorized":
                    out = _vexec.butterfly_vectorized(
                        machine, vals, op, partners)
                    if out is not None:
                        return out
                for partner in partners:
                    vals = op(vals, vals[partner])
                machine.doubling_sweep(length)
                return vals
            d, bit = 1, 0
            while d < length:
                partner = np.arange(length) ^ d
                vals = op(vals, vals[partner])
                machine.exchange(length, bit)
                d <<= 1
                bit += 1
            return vals
    prefix = parallel_prefix(machine, vals, op, segments=segments)
    is_last = np.ones(length, dtype=bool)
    is_last[:-1] = segments[:-1] != segments[1:]
    return fill_backward(machine, prefix, is_last, segments=segments)


def fill_backward(
    machine: Machine,
    values: np.ndarray,
    defined: np.ndarray,
    *,
    segments: np.ndarray | None = None,
) -> np.ndarray:
    """Propagate each defined value leftward to earlier slots of its segment.

    Every slot receives the value of *a* defined slot to its right within
    its segment (callers guarantee at most one defined slot per relevant
    range, e.g. the last slot of each segment).  Slots with no defined slot
    to their right keep their original value.
    """
    vals = np.array(values, copy=True)
    has = np.array(defined, dtype=bool, copy=True)
    length = _check(machine, vals, segments)
    fused = _plans.compiled_plans_enabled()
    d, bit = 1, 0
    while d < length:
        ok = ~has[:-d] & has[d:]
        if segments is not None:
            ok &= segments[:-d] == segments[d:]
        vals[:-d] = np.where(ok, vals[d:], vals[:-d])
        has[:-d] |= ok
        if not fused:
            machine.exchange(length, bit)
        d <<= 1
        bit += 1
    if fused:
        machine.doubling_sweep(length)
    return vals


def fill_forward(
    machine: Machine,
    values: np.ndarray,
    defined: np.ndarray,
    *,
    segments: np.ndarray | None = None,
) -> np.ndarray:
    """Mirror of :func:`fill_backward`: values propagate rightward."""
    vals = np.array(values, copy=True)
    has = np.array(defined, dtype=bool, copy=True)
    length = _check(machine, vals, segments)
    fused = _plans.compiled_plans_enabled()
    d, bit = 1, 0
    while d < length:
        ok = ~has[d:] & has[:-d]
        if segments is not None:
            ok &= segments[:-d] == segments[d:]
        vals[d:] = np.where(ok, vals[:-d], vals[d:])
        has[d:] |= ok
        if not fused:
            machine.exchange(length, bit)
        d <<= 1
        bit += 1
    if fused:
        machine.doubling_sweep(length)
    return vals


def broadcast(
    machine: Machine,
    values: np.ndarray,
    marked: np.ndarray,
    *,
    segments: np.ndarray | None = None,
) -> np.ndarray:
    """Send each segment's single marked value to every slot of the segment.

    Section 2.6 *Broadcast*.  Exactly one slot per segment should be marked;
    with zero marked slots a segment keeps its original values.
    """
    marked = np.asarray(marked, dtype=bool)
    with trace_span("broadcast", machine.metrics, n=len(marked)):
        out = fill_forward(machine, values, marked, segments=segments)
        # Slots left of the marked one still need it: fill backward.
        return fill_backward(machine, out, marked, segments=segments)
