"""Sort-based concurrent read / concurrent write and grouping (Section 2.6).

Meshes and hypercubes have no shared memory, so the CREW/CRCW operations a
PRAM gets for free are implemented by sorting: requests and master records
are sorted together on their keys, values are spread along equal-key runs by
segmented fills, and everything is routed back.  The resulting costs —
``Theta(sqrt(n))`` on the mesh and ``Theta(log^2 n)`` on the bitonic
hypercube — are exactly the concurrent-read/concurrent-write charges the
paper uses when costing direct PRAM simulation (Sections 1 and 6).

:func:`interval_locate` is the paper's *grouping* operation: one set of
ordered data performing simultaneous searches on another set of ordered
data by sorting both together and scanning.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np
from numpy.typing import ArrayLike

from ..errors import OperationContractError
from ..machines.machine import Machine
from ._common import next_pow2
from .bitonic import bitonic_sort
from .scan import fill_forward, semigroup

__all__ = ["concurrent_read", "concurrent_write", "interval_locate"]


def _combined(
    master_n: int, query_n: int,
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Padded layout: masters, then queries, then pad slots."""
    length = next_pow2(master_n + query_n)
    is_pad = np.zeros(length, dtype=np.int64)
    is_pad[master_n + query_n :] = 1
    is_query = np.zeros(length, dtype=np.int64)
    is_query[master_n : master_n + query_n] = 1
    orig = np.arange(length, dtype=np.int64)
    return length, is_pad, is_query, orig


def _pad_keys(keys_m: np.ndarray, keys_q: np.ndarray, length: int) -> np.ndarray:
    """Concatenate key arrays and fill pad slots with a comparable filler."""
    if len(keys_m) == 0:
        raise OperationContractError("at least one master record is required")
    out = np.empty(length, dtype=object)
    out[: len(keys_m)] = list(keys_m)
    out[len(keys_m) : len(keys_m) + len(keys_q)] = list(keys_q)
    out[len(keys_m) + len(keys_q) :] = keys_m[0]  # repro: noqa RPR003 -- host-side input staging (pads sort last via is_pad); movement is charged by the callers' bitonic sorts
    return out


def concurrent_read(
    machine: Machine,
    master_keys: ArrayLike,
    master_values: ArrayLike,
    query_keys: ArrayLike,
    *,
    default: Any = None,
) -> np.ndarray:
    """Every query slot reads the value of the master with an equal key.

    ``master_keys`` must be distinct.  Queries whose key matches no master
    receive ``default``.  Cost: two bitonic sorts plus scans.
    """
    master_keys = np.asarray(master_keys, dtype=object)
    master_values = np.asarray(master_values, dtype=object)
    query_keys = np.asarray(query_keys, dtype=object)
    m, q = len(master_keys), len(query_keys)
    length, is_pad, is_query, orig = _combined(m, q)
    keys = _pad_keys(master_keys, query_keys, length)
    values = np.full(length, default, dtype=object)
    values[:m] = master_values

    (sp, sk, sq), (sv, so) = bitonic_sort(
        machine, [is_pad, keys, is_query], [values, orig]
    )
    is_master = (sp == 0) & (sq == 0)
    filled = fill_forward(machine, sv, is_master, segments=sk)
    # Masters keep their own value; queries with no equal-key master keep
    # ``default`` because fill never crosses a key boundary.
    (_,), (back,) = bitonic_sort(machine, [so], [filled])
    return back[m : m + q]


def concurrent_write(
    machine: Machine,
    master_keys: ArrayLike,
    request_keys: ArrayLike,
    request_values: ArrayLike,
    combine: Callable[[Any, Any], Any],
    *,
    default: Any = None,
) -> np.ndarray:
    """Combine all requests targeting each master key (combining CW).

    Returns an array aligned with ``master_keys`` holding the ``combine``
    of all request values with that key, or ``default`` for masters nobody
    wrote to.  ``combine`` is an associative, commutative scalar function.
    """
    master_keys = np.asarray(master_keys, dtype=object)
    request_keys = np.asarray(request_keys, dtype=object)
    request_values = np.asarray(request_values, dtype=object)
    m, q = len(master_keys), len(request_keys)
    length, is_pad, is_query, orig = _combined(m, q)
    keys = _pad_keys(master_keys, request_keys, length)
    values = np.full(length, None, dtype=object)
    values[m : m + q] = request_values

    def merge_opt(a: Any, b: Any) -> Any:
        if a is None:
            return b
        if b is None:
            return a
        return combine(a, b)

    op = np.frompyfunc(merge_opt, 2, 1)
    (sp, sk, sq), (sv, so) = bitonic_sort(
        machine, [is_pad, keys, is_query], [values, orig]
    )
    totals = semigroup(machine, sv, op, segments=sk)
    # Pads share a master's key value; exclude their (None) contribution —
    # None is the identity of merge_opt, so they are harmless, but a pad
    # slot must not *receive* a result either; masters are selected below.
    (_,), (back,) = bitonic_sort(machine, [so], [totals])
    out = back[:m]
    return np.array([default if v is None else v for v in out], dtype=object)


def interval_locate(
    machine: Machine,
    boundaries: ArrayLike,
    queries: ArrayLike,
) -> np.ndarray:
    """For each query, the index of the rightmost boundary ``<= query``.

    ``boundaries`` must be sorted ascending.  Returns ``-1`` for queries
    before the first boundary.  This is the *grouping* search of Section
    2.6: sort both ordered sets together, scan, route back.
    """
    boundaries = np.asarray(boundaries, dtype=object)
    queries = np.asarray(queries, dtype=object)
    b, q = len(boundaries), len(queries)
    if b and any(boundaries[i] > boundaries[i + 1] for i in range(b - 1)):
        raise OperationContractError("boundaries must be sorted ascending")
    length, is_pad, is_query, orig = _combined(b, q)
    keys = _pad_keys(boundaries, queries, length)
    idx_val = np.full(length, -1, dtype=np.int64)
    idx_val[:b] = np.arange(b)

    (sp, sk, sq), (sv, so) = bitonic_sort(
        machine, [is_pad, keys, is_query], [idx_val, orig]
    )
    is_boundary = (sp == 0) & (sq == 0)
    filled = fill_forward(machine, sv, is_boundary)  # unsegmented: carry left
    # Pads sort after all real records, so they never feed a real query.
    (_,), (back,) = bitonic_sort(machine, [so], [filled])
    return back[b : b + q].astype(np.int64)
