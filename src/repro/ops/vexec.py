"""Vectorized plan executor: lowered key columns, whole-array rounds.

The ``"compiled"`` executor (:func:`repro.ops.plans.execute_plan`) already
replaced per-call index arithmetic with cached :class:`MovementPlan`
schedules, but it still evaluates the comparator over the *original* key
arrays every round.  For the object-dtype keys the geometry layers use —
python-float coordinates (``closest_pair``, ``convex_hull``), tuple ranks,
arbitrary-precision ints — that comparator is a per-element python loop
inside ``np.greater``, and it dominates sort-heavy workloads at scale.

This module is the ``"vectorized"`` strategy of the three-way executor
switch (:func:`repro.ops.plans.set_executor`):

* **key lowering** — once per operation, each key array is mapped to one
  or more *numeric comparison columns* (:func:`lower_keys`): native
  bool/int/float arrays pass through, object arrays of python numbers
  become ``int64``/``float64`` columns, and uniform numeric tuples become
  one column per position (tuple comparison *is* column-lexicographic).
  Lowering is exact by construction — a value that cannot be represented
  with identical comparison semantics (huge ints, ``Fraction``,
  ``SteadyValue`` sign-test objects, mixed types) refuses to lower.
* **network collapse** — a bitonic *sort* plan sorts every aligned
  segment for any input (0-1 principle), and a *merge* plan does once
  its sorted-halves premise holds; when the lowered keys carry no
  lexicographic ties, that arrangement is unique, so the whole replay
  collapses to one segment-wise ``argsort``/``lexsort``
  (:func:`_network_permutation`).  Ties or a violated premise fall back
  to the exact per-round replay: whole-array gathers over the
  precompiled ``src_lo``/``src_hi`` indices through a slot permutation,
  one numeric comparison per round, and an index-arithmetic writeback
  (two half-length scatters).  Either way the original key and payload
  arrays (often object-dtype) are touched exactly once, at the end.
* **explicit fallback** — when lowering refuses, the caller falls back to
  the compiled executor for that operation.  The fallback increments the
  ``vexec.fallbacks`` counter in the shared
  :mod:`repro.trace.registry` (lowered operations count under
  ``vexec.lowered``), so a workload silently running the slow path is
  visible in every ``--verbose`` table and trace export.

**Simulated time never moves.**  The executor performs the same pair
schedule as the compiled plan and charges the identical fused vectors:
``machine.exchange_sweep(length, plan.bits)`` per plan,
``machine.long_shift`` for the merge pre-permutation, and
``machine.doubling_sweep`` for the butterfly — bit-identical to both the
compiled and the reference executors (see ``docs/cost_model.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..trace.registry import get_counter
from ._common import lex_gt

if TYPE_CHECKING:
    from ..machines.machine import Machine
    from .plans import MovementPlan

__all__ = [
    "execute_plan_vectorized", "butterfly_vectorized",
    "lower_keys", "vexec_stats",
]

#: Operations executed over lowered columns / refused by the lowering
#: layer, in the shared registry so campaigns and benches can see which
#: path every workload took.
_STAT_LOWERED = get_counter("vexec.lowered")
_STAT_FALLBACKS = get_counter("vexec.fallbacks")

#: Scalar types the lowering layer accepts inside object arrays.
_NUMERIC_SCALARS = (bool, int, float, np.bool_, np.integer, np.floating)

#: Dtype kinds whose arrays compare correctly column-wise as-is
#: (bool, signed/unsigned int, float, unicode/byte strings).
_NATIVE_KINDS = "biufUS"

#: Butterfly combiners with a lowered equivalent: min/max run as index
#: selections (the result is one of the original objects), add reruns the
#: sum over the lowered column and reboxes.
_SELECT_OPS = (np.minimum, np.maximum)


def vexec_stats() -> dict:
    """Process-wide lowering counters (also in ``registry_snapshot()``)."""
    return {"lowered": _STAT_LOWERED.value,
            "fallbacks": _STAT_FALLBACKS.value}


# ----------------------------------------------------------------------
# Key lowering.  These helpers are the *boundary* between python objects
# and numeric columns: the one place in this module allowed to walk
# elements (once per operation) — RPR006 exempts ``_lower*``/``_rebox*``
# functions and holds the executors below to whole-array code.
# ----------------------------------------------------------------------
def _lower_scalars(values: Sequence,
                   obj: np.ndarray | None = None,
                   kinds: set[type] | None = None) -> list[np.ndarray] | None:
    """Python numbers -> one exact ``int64`` or ``float64`` column.

    The per-element work is a single C-level pass building the set of
    element *types* (reused via ``kinds`` when the caller already has
    it); conversion and the exact-representability check run as
    whole-array numpy operations (``astype`` raises ``OverflowError`` on
    an int outside its target range, and comparing the float column back
    against the objects uses python's exact cross-type ``==``).
    """
    if kinds is None:
        kinds = set(map(type, values))
    if not all(issubclass(t, _NUMERIC_SCALARS) for t in kinds):
        return None
    if obj is None:
        obj = np.empty(len(values), dtype=object)
        obj[:] = values
    if all(issubclass(t, (bool, np.bool_, int, np.integer)) for t in kinds):
        try:
            return [obj.astype(np.int64)]
        except OverflowError:
            return None  # arbitrary-precision ints: int64 would wrap
    try:
        col = obj.astype(np.float64)
    except OverflowError:
        return None  # an int too large for float64
    if np.isnan(col).any():
        return None
    if not bool(np.asarray(obj == col, dtype=bool).all()):
        return None  # a value float64 cannot represent exactly
    return [col]


def _lower_object_column(arr: np.ndarray) -> list[np.ndarray] | None:
    """One object-dtype array -> numeric column(s), or None (not lowerable)."""
    values = arr.tolist()
    kinds = set(map(type, values))
    if all(issubclass(t, _NUMERIC_SCALARS) for t in kinds):
        return _lower_scalars(values, arr, kinds)
    if not all(issubclass(t, tuple) for t in kinds):
        return None
    widths = set(map(len, values))
    if len(widths) != 1 or widths == {0}:
        return None
    cols: list[np.ndarray] = []
    for column in zip(*values):
        sub = _lower_scalars(column)
        if sub is None:
            return None
        cols.extend(sub)
    return cols


def lower_keys(keys: list[np.ndarray]) -> list[np.ndarray] | None:
    """Map key arrays to comparison columns; ``None`` when not lowerable.

    The returned columns compare lexicographically exactly like the input
    key list: native numeric/string arrays are copied through, an object
    array of python numbers becomes one exact column, and an object array
    of uniform-width numeric tuples becomes one column per position.
    """
    cols: list[np.ndarray] = []
    for k in keys:
        if k.dtype != object:
            if k.dtype.kind not in _NATIVE_KINDS:
                return None
            cols.append(np.array(k, copy=True))
            continue
        sub = _lower_object_column(k)
        if sub is None:
            return None
        cols.extend(sub)
    return cols


def _lower_single_column(values: np.ndarray) -> np.ndarray | None:
    """One object array -> exactly one numeric column (for the butterfly)."""
    cols = _lower_object_column(values)
    if cols is None or len(cols) != 1:
        return None
    return cols[0]


def _rebox_column(col: np.ndarray) -> np.ndarray:
    """Lift a numeric column back to an object array of python scalars."""
    out = np.empty(len(col), dtype=object)
    out[:] = col.tolist()
    return out


# ----------------------------------------------------------------------
# Executors.  Everything below is whole-array: precompiled index gathers,
# vectorized comparators, fused writebacks — and the identical fused
# charges the other executors pay.
# ----------------------------------------------------------------------
def _halves_nondecreasing(grids: list[np.ndarray], lo: int,
                          hi: int) -> bool:
    """Lexicographic non-decrease along columns ``[lo, hi)`` of each row."""
    a = [g[:, lo:hi - 1] for g in grids]
    b = [g[:, lo + 1:hi] for g in grids]
    gt = np.zeros(a[0].shape, dtype=bool)
    eq = np.ones(a[0].shape, dtype=bool)
    for x, y in zip(a, b):
        gt |= eq & (x > y)
        eq &= x == y
    return not bool(gt.any())


def _network_permutation(plan: MovementPlan,
                         cols: list[np.ndarray]) -> np.ndarray | None:
    """The network's final arrangement, computed without replaying rounds.

    A bitonic *sort* schedule sorts every aligned segment for **any**
    input (the 0-1 principle), and a bitonic *merge* schedule does so
    whenever each segment half is sorted ascending — the op's documented
    premise, verified here on the lowered columns.  If additionally the
    segment keys are strictly ordered (no lexicographic ties), that
    sorted arrangement is *unique*: the output no longer depends on the
    round structure at all, and the whole replay collapses to one
    segment-wise argsort.  Ties, a violated merge premise, or a plan that
    is not a comparator network return ``None`` — the caller replays the
    rounds instead, which is always exact.
    """
    if plan.key[0] not in ("sort", "merge"):
        return None
    _, length, seg, ascending = plan.key
    nseg = length // seg
    grids = [c.reshape(nseg, seg) for c in cols]
    if plan.key[0] == "merge":
        half = seg // 2
        if not (_halves_nondecreasing(grids, 0, half)
                and _halves_nondecreasing(grids, half, seg)):
            return None
    if len(cols) == 1:
        # Stable kind is timsort: linear on the merge path's sorted runs.
        perm2d = np.argsort(grids[0], axis=1, kind="stable")
        perm2d += np.arange(nseg, dtype=perm2d.dtype)[:, None] * seg
    elif nseg == 1:
        perm2d = np.lexsort(tuple(reversed(cols))).reshape(1, seg)
    else:
        seg_ids = np.arange(length, dtype=np.intp) // seg
        perm2d = np.lexsort((*reversed(cols), seg_ids)).reshape(nseg, seg)
    eq = np.ones((nseg, seg - 1), dtype=bool)
    for c in cols:
        sc = c[perm2d]
        eq &= sc[:, :-1] == sc[:, 1:]
        if not eq.any():
            break
    if eq.any():
        return None  # tied keys: the arrangement depends on the rounds
    if not ascending:
        perm2d = perm2d[:, ::-1]
    return np.ascontiguousarray(perm2d.ravel()).astype(np.intp, copy=False)


def execute_plan_vectorized(
    machine: Machine,
    plan: MovementPlan,
    keys: list[np.ndarray],
    payloads: list[np.ndarray],
) -> bool:
    """Replay a compiled plan over lowered columns; False means fall back.

    On success, ``keys`` and ``payloads`` are permuted in place to exactly
    the arrangement :func:`repro.ops.plans.execute_plan` produces, and the
    machine is charged exactly the plan's fused vectors.  On a lowering
    refusal nothing is mutated or charged: the caller must run the
    compiled executor instead (the refusal is counted, never silent).
    """
    cols = lower_keys(keys)
    if cols is None:
        _STAT_FALLBACKS.value += 1
        return False
    _STAT_LOWERED.value += 1
    length = len(keys[0])
    if plan.pre_permutation is not None:
        machine.long_shift(length, plan.shift_span)
    perm = _network_permutation(plan, cols)
    if perm is None:
        perm = _replay_rounds(plan, cols, length)
    if plan.bits:
        machine.exchange_sweep(length, plan.bits)
    for arr in (*keys, *payloads):
        arr[:] = arr[perm]
    return True


def _replay_rounds(plan: MovementPlan, cols: list[np.ndarray],
                   length: int) -> np.ndarray:
    """Exact per-round replay over the lowered columns (the general path)."""
    perm = np.arange(length, dtype=np.intp)
    if plan.pre_permutation is not None:
        perm = perm[plan.pre_permutation]
    half = length // 2
    pslo = np.empty(half, dtype=np.intp)
    pshi = np.empty(half, dtype=np.intp)
    delta = np.empty(half, dtype=np.intp)
    single = cols[0] if len(cols) == 1 else None
    for rnd in plan.rounds:
        # ``perm`` composes the rounds so far: slot i currently holds
        # original element perm[i].  Gather the round's pair indices
        # through it instead of carrying permuted column copies.
        np.take(perm, rnd.src_lo, out=pslo)
        np.take(perm, rnd.src_hi, out=pshi)
        if single is not None:
            swap = np.asarray(single[pslo] > single[pshi], dtype=bool)
        else:
            swap = lex_gt([c[pslo] for c in cols], [c[pshi] for c in cols])
        if not swap.any():
            continue
        # Fused writeback, two half-length scatters: orientation fusion
        # guarantees the round leaves the pair minimum at ``src_lo`` and
        # the maximum at ``src_hi`` (see ``plans._compile_round``), so
        # the swap selects between the gathered indices — written as
        # index arithmetic, which beats a pair of ``np.where`` calls.
        np.subtract(pshi, pslo, out=delta)
        np.multiply(delta, swap, out=delta)
        np.add(pslo, delta, out=pslo)
        np.subtract(pshi, delta, out=pshi)
        perm[rnd.src_lo] = pslo
        perm[rnd.src_hi] = pshi
    return perm


def butterfly_vectorized(machine, values: np.ndarray, op,
                         partners: tuple) -> np.ndarray | None:
    """Semigroup butterfly over a lowered column; None means fall back.

    ``np.minimum``/``np.maximum`` run as index *selections* — the result
    slots hold the original objects, chosen by numeric comparison with
    the same tie rule as the ufunc (ties keep the first operand).
    ``np.add`` reruns the reduction over the lowered column and reboxes;
    int columns are refused (python-int sums never wrap, ``int64`` sums
    could).  Charges one fused doubling sweep — identical to the
    per-round exchanges it replaces.
    """
    length = len(values)
    if op in _SELECT_OPS:
        col = _lower_single_column(values)
        if col is None:
            _STAT_FALLBACKS.value += 1
            return None
        _STAT_LOWERED.value += 1
        idx = np.arange(length, dtype=np.intp)
        for partner in partners:
            pv = col[partner]
            pick = (pv < col) if op is np.minimum else (pv > col)
            col = np.where(pick, pv, col)
            idx = np.where(pick, idx[partner], idx)
        machine.doubling_sweep(length)
        return values[idx]
    if op is np.add:
        col = _lower_single_column(values)
        if col is None or col.dtype.kind != "f":
            _STAT_FALLBACKS.value += 1
            return None
        _STAT_LOWERED.value += 1
        for partner in partners:
            col = col + col[partner]
        machine.doubling_sweep(length)
        return _rebox_column(col)
    _STAT_FALLBACKS.value += 1
    return None
