"""Shared helpers for the data-movement operations."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np
from numpy.typing import ArrayLike

from ..errors import OperationContractError

#: One key array, or several comparing lexicographically (most significant
#: first) — the key spec every sort/merge entry point accepts.
KeySpec = Union[ArrayLike, Sequence[ArrayLike]]

__all__ = ["as_key_list", "lex_gt", "lex_eq", "check_power_of_two",
           "check_segment_size", "next_pow2"]


def next_pow2(m: int) -> int:
    """Smallest power of two >= max(m, 1)."""
    return 1 << max(0, (max(m, 1) - 1).bit_length())


def check_power_of_two(length: int, what: str = "operation length") -> None:
    if length < 1 or (length & (length - 1)):
        raise OperationContractError(f"{what} must be a power of two, got {length}")


def check_segment_size(length: int, segment_size: int | None) -> int:
    """Validate and default the per-segment size for segmented networks."""
    check_power_of_two(length)
    if segment_size is None:
        return length
    check_power_of_two(segment_size, "segment size")
    if segment_size > length or length % segment_size:
        raise OperationContractError(
            f"segment size {segment_size} incompatible with length {length}"
        )
    return segment_size


def as_key_list(keys: KeySpec) -> list[np.ndarray]:
    """Normalise a key spec (one array or a list of arrays) to a list.

    Multiple keys compare lexicographically, most significant first.
    NaN keys are rejected: NaN comparisons are all-false, which would make
    the compare-exchange network silently produce garbage.
    """
    if isinstance(keys, np.ndarray):
        keys = [keys]
    keys = [np.asarray(k) for k in keys]
    if not keys:
        raise OperationContractError("at least one key array is required")
    length = len(keys[0])
    if any(len(k) != length for k in keys):
        raise OperationContractError("key arrays must share one length")
    for k in keys:
        if np.issubdtype(k.dtype, np.floating) and np.isnan(k).any():
            raise OperationContractError("keys must not contain NaN")
    return keys


def _bool(arr: ArrayLike) -> np.ndarray:
    return np.asarray(arr, dtype=bool)


def lex_gt(a: list[np.ndarray], b: list[np.ndarray]) -> np.ndarray:
    """Vectorised lexicographic ``a > b`` over parallel key lists."""
    gt = np.zeros(len(a[0]), dtype=bool)
    eq = np.ones(len(a[0]), dtype=bool)
    for x, y in zip(a, b):
        gt |= eq & _bool(x > y)
        eq &= _bool(x == y)
    return gt


def lex_eq(a: list[np.ndarray], b: list[np.ndarray]) -> np.ndarray:
    """Vectorised lexicographic equality over parallel key lists."""
    eq = np.ones(len(a[0]), dtype=bool)
    for x, y in zip(a, b):
        eq &= _bool(x == y)
    return eq
