"""Bitonic sorting and merging networks (Section 2.6: *Merging*, *Sorting*).

Batcher's bitonic network [Batcher 1968] expressed as lockstep
compare-exchange rounds at rank-bit distances.  The per-round cost comes
from the machine's topology:

* **hypercube**: every round costs 1, so a full sort is
  ``Theta(log^2 n)`` — the deterministic bound the paper quotes;
* **mesh** (shuffled-row-major / proximity ranks): a round at bit ``j``
  costs ``2^{j//2}``, and the stage sums telescope to ``Theta(sqrt(n))`` —
  the Thompson–Kung optimal mesh sort the paper cites.

Segmented operation (``segment_size``) sorts or merges every aligned block
independently, which is how the paper runs operations "within strings".
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from numpy.typing import ArrayLike

from ..errors import OperationContractError
from ..machines.machine import Machine
from ..trace.tracer import trace_span
from . import plans as _plans
from . import vexec as _vexec
from ._common import KeySpec, as_key_list, check_segment_size, lex_gt

__all__ = ["bitonic_sort", "bitonic_merge", "compare_exchange_round"]


def _copy_arrays(arrays: Iterable[ArrayLike]) -> list[np.ndarray]:
    return [np.array(a, copy=True) for a in arrays]


def compare_exchange_round(
    machine: Machine,
    keys: list[np.ndarray],
    payloads: list[np.ndarray],
    j: int,
    up: np.ndarray,
) -> None:
    """One lockstep compare-exchange round pairing slot ``i`` with ``i ^ j``.

    ``up`` is a boolean array indexed by slot: pairs whose *lower* slot has
    ``up=True`` order ascending (minimum to the lower slot), others
    descending.  Mutates ``keys`` and ``payloads`` in place and charges one
    exchange round.
    """
    length = len(keys[0])
    idx = np.arange(length)
    lower = idx[(idx & j) == 0]
    upper = lower | j
    a = [k[lower] for k in keys]
    b = [k[upper] for k in keys]
    swap = np.where(up[lower], lex_gt(a, b), lex_gt(b, a))
    if swap.any():
        src = lower[swap]
        dst = upper[swap]
        for arr in (*keys, *payloads):
            tmp = arr[src].copy()
            arr[src] = arr[dst]
            arr[dst] = tmp
    machine.exchange(length, j.bit_length() - 1)


def bitonic_sort(
    machine: Machine,
    keys: KeySpec,
    payloads: Sequence[ArrayLike] = (),
    *,
    ascending: bool = True,
    segment_size: int | None = None,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Sort ``keys`` (lexicographic across a key list) carrying ``payloads``.

    Returns ``(sorted_keys, sorted_payloads)`` as new arrays; inputs are not
    modified.  With ``segment_size`` every aligned block of that size is
    sorted independently (all blocks ascending when ``ascending``).

    On a machine constructed with ``randomized=True`` the sort instead
    charges the measured round count of a Valiant two-phase routed
    randomized sort (the Reif–Valiant expected-``Theta(log n)`` substrate
    of Table 1) — results are identical, only the cost model changes.
    """
    if getattr(machine, "randomized", False) and segment_size is None:
        with trace_span("randomized_sort", machine.metrics):
            return _randomized_sort(machine, keys, payloads, ascending)
    keys = _copy_arrays(as_key_list(keys))
    payloads = _copy_arrays([np.asarray(p) for p in payloads])
    length = len(keys[0])
    if any(len(p) != length for p in payloads):
        raise OperationContractError("payload arrays must match key length")
    seg = check_segment_size(length, segment_size)
    with trace_span("bitonic_sort", machine.metrics, n=length, segment=seg):
        if _plans.compiled_plans_enabled():
            plan = _plans.get_sort_plan(machine, length, seg, bool(ascending))
            if (_plans.get_executor() == "vectorized"
                    and _vexec.execute_plan_vectorized(
                        machine, plan, keys, payloads)):
                return keys, payloads
            _plans.execute_plan(machine, plan, keys, payloads, lex_gt)
            return keys, payloads
        idx = np.arange(length)
        k = 2
        while k <= seg:
            if k == seg:
                up = np.full(length, ascending)
            else:
                up = ((idx & k) == 0) == ascending
            j = k >> 1
            while j >= 1:
                compare_exchange_round(machine, keys, payloads, j, up)
                j >>= 1
            k <<= 1
    return keys, payloads


def _randomized_sort(
    machine: Machine,
    keys: KeySpec,
    payloads: Sequence[ArrayLike],
    ascending: bool,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Expected-time sort: identical output, Valiant-routed cost model.

    The data is sorted host-side (a stable lexicographic sort), and the
    machine is charged the *measured* lockstep rounds of a flashsort-style
    randomized sort: two Valiant routing phases on a random permutation of
    matching size plus O(log n) splitter bookkeeping — the [Reif and
    Valiant 1987] substrate behind the paper's "expected" columns.
    """
    from ..machines.routing import randomized_sort_rounds

    keys = _copy_arrays(as_key_list(keys))
    payloads = _copy_arrays([np.asarray(p) for p in payloads])
    length = len(keys[0])
    if any(len(p) != length for p in payloads):
        raise OperationContractError("payload arrays must match key length")
    check_segment_size(length, None)
    def _lexsortable(k: np.ndarray) -> bool:
        if ascending:
            return np.issubdtype(k.dtype, np.number)
        # Descending negates the keys, so unsigned ints are out.
        return (np.issubdtype(k.dtype, np.floating)
                or np.issubdtype(k.dtype, np.signedinteger))

    if all(_lexsortable(k) for k in keys):
        # Stable lexicographic argsort; least-significant key first for
        # np.lexsort.  Descending order negates the keys, which preserves
        # the tie order of a stable reverse sort (same permutation as
        # sorted(..., reverse=True)).
        cols = keys if ascending else [-k for k in keys]
        order = np.lexsort(tuple(reversed(cols)))
    else:
        order = np.asarray(sorted(
            range(length),
            key=lambda i: tuple(k[i] for k in keys),
            reverse=not ascending,
        ))
    keys = [k[order] for k in keys]
    payloads = [p[order] for p in payloads]
    machine._rand_calls += 1
    rounds = randomized_sort_rounds(length, seed=machine._rand_calls)
    machine.metrics.charge_comm(1.0, rounds=int(round(rounds)))
    machine.local(length, count=max(1, length.bit_length() - 1))
    return keys, payloads


def bitonic_merge(
    machine: Machine,
    keys: KeySpec,
    payloads: Sequence[ArrayLike] = (),
    *,
    ascending: bool = True,
    segment_size: int | None = None,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Merge two sorted halves of each aligned segment into one sorted run.

    Inside every ``segment_size`` block, slots ``[0, S/2)`` and ``[S/2, S)``
    must each be sorted ascending.  The second half is reversed by one
    lockstep long shift (turning the block into a bitonic sequence), then a
    single bitonic-merge stage finishes: ``Theta(sqrt(S))`` mesh time,
    ``Theta(log S)`` hypercube time — the *Merging* row of Table 1.
    """
    keys = _copy_arrays(as_key_list(keys))
    payloads = _copy_arrays([np.asarray(p) for p in payloads])
    length = len(keys[0])
    seg = check_segment_size(length, segment_size)
    if seg < 2:
        return keys, payloads
    half = seg // 2
    with trace_span("bitonic_merge", machine.metrics, n=length, segment=seg):
        if _plans.compiled_plans_enabled():
            plan = _plans.get_merge_plan(machine, length, seg, bool(ascending))
            if (_plans.get_executor() == "vectorized"
                    and _vexec.execute_plan_vectorized(
                        machine, plan, keys, payloads)):
                return keys, payloads
            _plans.execute_plan(machine, plan, keys, payloads, lex_gt)
            return keys, payloads
        # Reverse the second half of every segment (one lockstep route).
        rev = np.arange(length)
        inseg = rev % seg
        rev = np.where(inseg >= half, rev - inseg + seg - 1 - (inseg - half),
                       rev)
        for arr in (*keys, *payloads):
            arr[:] = arr[rev]
        machine.long_shift(length, half)
        # One bitonic merge stage, comparisons in the requested direction.
        up = np.full(length, ascending)
        j = half
        while j >= 1:
            compare_exchange_round(machine, keys, payloads, j, up)
            j >>= 1
    return keys, payloads
