"""Data routing: packing, unpacking, and permutation routes.

*Packing* (compression) moves the marked items of a string to its front,
preserving order — the operation the paper invokes as "a parallel prefix
operation may be used to pack this sequence into a string" (Theorem 4.5
Step 5, Theorem 4.6 Step 5).  Destinations come from a prefix sum and the
movement is an order-preserving *monotone route*, which crosses each rank-bit
dimension at most once without congestion: ``Theta(sqrt(n))`` mesh time,
``Theta(log n)`` hypercube time.

*Unpacking* (expansion) spreads per-slot lists of up to O(1) items into one
item per slot — how the subpieces created in Step 4 of Lemma 3.1 are laid
out one per PE for the next round.

General permutation routes are performed by sorting on the destination rank.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np
from numpy.typing import ArrayLike

from ..errors import OperationContractError
from ..machines.machine import Machine
from ..trace.tracer import trace_span
from ._common import check_power_of_two, next_pow2
from .bitonic import bitonic_sort
from .scan import parallel_prefix

__all__ = ["pack", "unpack_lists", "permute"]


def pack(machine: Machine, mask: np.ndarray, payloads: Sequence[ArrayLike],
         *, fill: Any = None) -> tuple[list[np.ndarray], int]:
    """Move marked items to the front of the string, preserving order.

    Returns ``(packed_payloads, count)`` where each packed array has the
    original length with unmarked tail slots set to ``fill``.
    """
    mask = np.asarray(mask, dtype=bool)
    length = len(mask)
    check_power_of_two(length)
    payloads = [np.asarray(p) for p in payloads]
    if any(len(p) != length for p in payloads):
        raise OperationContractError("payload arrays must match mask length")
    with trace_span("pack", machine.metrics, n=length):
        return _pack_body(machine, mask, payloads, length, fill)


def _pack_body(machine: Machine, mask: np.ndarray,
               payloads: Sequence[np.ndarray], length: int,
               fill: Any) -> tuple[list[np.ndarray], int]:
    ranks = parallel_prefix(machine, mask.astype(np.int64), np.add)
    machine.local(length)  # each marked slot computes its destination
    dest = ranks - 1
    count = int(ranks[-1]) if length else 0
    outs = []
    for p in payloads:
        if p.dtype == object:
            out = np.full(length, fill, dtype=object)
        elif fill is None:
            out = np.zeros(length, dtype=p.dtype)
        else:
            out = np.full(length, fill, dtype=p.dtype)
        out[dest[mask]] = p[mask]
        outs.append(out)
    machine.monotone_route(length)
    return outs, count


def unpack_lists(machine: Machine, lists: np.ndarray, *, fill: Any = None,
                 out_length: int | None = None) -> tuple[np.ndarray, int]:
    """Flatten per-slot item lists into one item per slot, order preserved.

    ``lists`` is an object array whose elements are (possibly empty)
    sequences of bounded length c = O(1).  Returns ``(flat, total)`` where
    ``flat`` is an object array of length ``out_length`` (default: the
    smallest power of two holding all items).  Cost: one prefix sum plus
    ``c`` monotone routes.
    """
    length = len(lists)
    check_power_of_two(length)
    with trace_span("unpack_lists", machine.metrics, n=length):
        return _unpack_body(machine, lists, length, fill, out_length)


def _unpack_body(machine: Machine, lists: np.ndarray, length: int, fill: Any,
                 out_length: int | None) -> tuple[np.ndarray, int]:
    counts = np.array([len(x) for x in lists], dtype=np.int64)
    machine.local(length)
    max_per = int(counts.max()) if length else 0
    offsets = parallel_prefix(machine, counts, np.add) - counts
    total = int(counts.sum())
    out_length = out_length or next_pow2(total)
    if total > out_length:
        raise OperationContractError(
            f"{total} items do not fit in output of length {out_length}"
        )
    flat = np.full(out_length, fill, dtype=object)
    for j in range(max_per):
        has = counts > j
        idx = offsets[has] + j
        flat[idx] = [lists[i][j] for i in np.flatnonzero(has)]
        machine.monotone_route(out_length)
    return flat, total


def permute(machine: Machine, dest: np.ndarray,
            payloads: Sequence[ArrayLike]) -> list[np.ndarray]:
    """Route item ``i`` to slot ``dest[i]`` (a permutation of the slots).

    Implemented as a sort on the destination rank — the standard
    deterministic technique, costing one full sort (``Theta(sqrt(n))`` mesh,
    ``Theta(log^2 n)`` hypercube).  Returns the routed payload arrays.
    """
    dest = np.asarray(dest, dtype=np.int64)
    length = len(dest)
    check_power_of_two(length)
    if (dest.min(initial=0) < 0 or dest.max(initial=-1) >= length
            or len(np.unique(dest)) != length):
        raise OperationContractError("dest must be a permutation of the slots")
    _, routed = bitonic_sort(machine, dest, payloads)
    return routed
