"""Compiled data-movement plans (the plan compiler).

Every deterministic network in :mod:`repro.ops` — bitonic sorting and
merging, recursive-doubling scans — issues a round schedule that is a pure
function of ``(operation, length, segment_size, direction)``: which slots
pair up, which pairs order ascending, and which rank bit each round
exchanges at.  The interpreted executors rebuild those index arrays with
``np.arange``/mask arithmetic on *every call*, which the wall-clock phase
breakdown shows dominating sort-heavy workloads.

This module compiles each signature once into an immutable
:class:`MovementPlan` cached across machine instances (the same
cross-instance pattern as ``_CHARGE_CACHE`` in
:mod:`repro.machines.machine`):

* **pair schedule** — per round, the ``lower``/``upper`` slot indices of
  every compare-exchange pair;
* **orientation fusion** — per round, gather indices ``src_lo``/``src_hi``
  pre-oriented by the pair's direction, so execution evaluates the (often
  expensive, object-dtype) comparator **once** per pair instead of
  evaluating both ``a > b`` and ``b > a`` and selecting;
* **charge vector** — the tuple of rank bits the schedule exchanges at, in
  round order.  Execution charges it through
  :meth:`~repro.machines.machine.Machine.exchange_sweep`, which fuses
  consecutive legs (same-distance mesh bit pairs, intra-PE zero-distance
  rounds) into one aggregated charge.  All link distances in the cost
  model are integer-valued, so the aggregated totals are **bit-identical**
  to charging the interpreted rounds one by one — simulated time never
  moves when plans are toggled.

The cache is bounded (`_PLAN_CACHE_CAP`) and clearable through
:func:`clear_plan_cache` / :func:`repro.machines.clear_caches`.  Hit, miss
and compile-time counters feed the ``--verbose`` diagnostics next to the
crossing-cache numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter  # repro: noqa RPR001 -- compile-time is host-side bookkeeping (plan_compile_seconds), never a simulated charge
from typing import TYPE_CHECKING, Callable, TypeVar

import numpy as np

from ..trace.registry import get_counter, register_gauge

if TYPE_CHECKING:
    from ..machines.machine import Machine

__all__ = [
    "MovementPlan", "PlanRound", "EXECUTORS",
    "compiled_plans_enabled", "set_compiled_plans",
    "get_executor", "set_executor",
    "get_sort_plan", "get_merge_plan", "get_butterfly_partners",
    "plan_cache_stats", "reset_plan_stats", "clear_plan_cache",
]

#: The three executor strategies (the ``set_fast_combine`` pattern):
#:
#: * ``"reference"``  — the interpreted per-round executors: index arrays
#:   rebuilt with ``np.arange`` every call, comparators evaluated both
#:   ways.  The slowest path and the semantic oracle the other two are
#:   verified against.
#: * ``"compiled"``   — cached :class:`MovementPlan` schedules with
#:   pre-oriented gathers; comparators still run over the original
#:   (possibly object-dtype) key arrays.
#: * ``"vectorized"`` — compiled plans executed by :mod:`repro.ops.vexec`
#:   over numeric key columns lowered once per operation; falls back to
#:   ``"compiled"`` *per operation* when a key cannot be lowered (counted
#:   in ``vexec.fallbacks``, never silent).
#:
#: Outputs and simulated charges are bit-identical for all three — only
#: host wall-clock moves.
EXECUTORS = ("reference", "compiled", "vectorized")

_EXECUTOR = "vectorized"

#: Compiled plans keyed by (op, length, segment_size, direction).
_PLAN_CACHE: dict = {}

#: Bound on distinct cached signatures.  A campaign touches a few dozen
#: signatures; the cap only matters for adversarial sweeps over many
#: lengths, where dropping the whole cache and recompiling is cheaper
#: than tracking recency per call.
_PLAN_CACHE_CAP = 256

#: Process-wide plan-cache counters, unified into the shared
#: :data:`repro.trace.registry.REGISTRY` so they appear in the same
#: ``--verbose`` table and trace exports as the crossing-cache numbers.
_STAT_HITS = get_counter("movement_plans.hits")
_STAT_MISSES = get_counter("movement_plans.misses")
_STAT_COMPILE = get_counter("movement_plans.compile_seconds", 0.0)
register_gauge("movement_plans.cache_size", lambda: len(_PLAN_CACHE))


def get_executor() -> str:
    """The active executor strategy (``"vectorized"`` by default)."""
    return _EXECUTOR


def set_executor(name: str) -> str:
    """Select the executor strategy; returns the previous name.

    Library code never reads ``REPRO_EXECUTOR`` itself (RPR002): CLI entry
    points parse the env var / flag once at the edge and call this.
    """
    global _EXECUTOR
    if name not in EXECUTORS:
        raise ValueError(
            f"unknown executor {name!r}; choose one of {EXECUTORS}")
    prev = _EXECUTOR
    _EXECUTOR = name
    return prev


def compiled_plans_enabled() -> bool:
    """Whether the ops layer executes compiled plans (True by default).

    Both the ``"compiled"`` and ``"vectorized"`` strategies run compiled
    plans (and charge through the fused sweeps); only ``"reference"``
    takes the interpreted per-round path.
    """
    return _EXECUTOR != "reference"


def set_compiled_plans(enabled) -> str:
    """Back-compat executor toggle; returns the previous executor name.

    Accepts the historical booleans (``True`` → ``"compiled"``, ``False``
    → ``"reference"``) as well as any :data:`EXECUTORS` name, so callers
    can restore a saved setting with the returned value either way.
    """
    if isinstance(enabled, str):
        return set_executor(enabled)
    return set_executor("compiled" if enabled else "reference")


def plan_cache_stats() -> dict:
    """Process-wide plan-cache counters: hits, misses, compile seconds."""
    total = _STAT_HITS.value + _STAT_MISSES.value
    return {
        "hits": _STAT_HITS.value,
        "misses": _STAT_MISSES.value,
        "compile_seconds": _STAT_COMPILE.value,
        "hit_rate": (_STAT_HITS.value / total) if total else 0.0,
        "size": len(_PLAN_CACHE),
    }


def reset_plan_stats() -> None:
    _STAT_HITS.reset()
    _STAT_MISSES.reset()
    _STAT_COMPILE.reset()


def clear_plan_cache() -> None:
    """Drop every compiled plan and reset the counters."""
    _PLAN_CACHE.clear()
    reset_plan_stats()


@dataclass(frozen=True)
class PlanRound:
    """One compiled compare-exchange round.

    ``lower``/``upper`` are the pair slot indices; ``src_lo``/``src_hi``
    are the same pairs with the roles pre-swapped for descending pairs, so
    ``swap = lex_gt(keys[src_lo], keys[src_hi])`` decides every pair with
    one comparator sweep.
    """

    bit: int
    lower: np.ndarray
    upper: np.ndarray
    src_lo: np.ndarray
    src_hi: np.ndarray


@dataclass(frozen=True)
class MovementPlan:
    """An immutable compiled round schedule for one movement signature.

    ``pre_permutation``/``shift_span`` describe the optional lockstep
    reversal that precedes a bitonic merge; ``bits`` is the charge vector
    (one rank bit per round, in round order).
    """

    key: tuple
    rounds: tuple[PlanRound, ...]
    bits: tuple[int, ...]
    pre_permutation: np.ndarray | None = None
    shift_span: int = 0


_Compiled = TypeVar("_Compiled")


def _index_dtype(length: int) -> type[np.signedinteger]:
    return np.int32 if length < (1 << 31) else np.int64


def _machine_note(machine: Machine, hit: bool, seconds: float) -> None:
    note = getattr(machine.metrics, "note_plan", None)
    if note is not None:
        note(hit, seconds)


def _lookup(machine: Machine, key: tuple,
            compile_fn: Callable[[], _Compiled]) -> _Compiled:
    """Fetch a cached plan, compiling (and counting) on a miss."""
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _STAT_HITS.value += 1
        _machine_note(machine, True, 0.0)
        return plan
    t0 = perf_counter()
    plan = compile_fn()
    dt = perf_counter() - t0
    _STAT_MISSES.value += 1
    _STAT_COMPILE.value += dt
    _machine_note(machine, False, dt)
    if len(_PLAN_CACHE) >= _PLAN_CACHE_CAP:
        _PLAN_CACHE.clear()
    _PLAN_CACHE[key] = plan
    return plan


def _compile_round(idx: np.ndarray, j: int, up: np.ndarray,
                   dtype: type[np.signedinteger]) -> PlanRound:
    lower = idx[(idx & j) == 0].astype(dtype, copy=False)
    upper = (lower | j).astype(dtype, copy=False)
    up_low = up[lower]
    src_lo = np.where(up_low, lower, upper).astype(dtype, copy=False)
    src_hi = np.where(up_low, upper, lower).astype(dtype, copy=False)
    return PlanRound(j.bit_length() - 1, lower, upper, src_lo, src_hi)


def get_sort_plan(machine: Machine, length: int, segment_size: int,
                  ascending: bool) -> MovementPlan:
    """The full bitonic-sort schedule for ``(length, segment, direction)``."""
    key = ("sort", length, segment_size, ascending)
    return _lookup(machine, key,
                   lambda: _compile_sort(key, length, segment_size, ascending))


def _compile_sort(key: tuple, length: int, seg: int,
                  ascending: bool) -> MovementPlan:
    dtype = _index_dtype(length)
    idx = np.arange(length)
    rounds: list[PlanRound] = []
    bits: list[int] = []
    k = 2
    while k <= seg:
        if k == seg:
            up = np.full(length, ascending)
        else:
            up = ((idx & k) == 0) == ascending
        j = k >> 1
        while j >= 1:
            rnd = _compile_round(idx, j, up, dtype)
            rounds.append(rnd)
            bits.append(rnd.bit)
            j >>= 1
        k <<= 1
    return MovementPlan(key, tuple(rounds), tuple(bits))


def get_merge_plan(machine: Machine, length: int, segment_size: int,
                   ascending: bool) -> MovementPlan:
    """The bitonic-merge schedule: segment-half reversal + one merge stage."""
    key = ("merge", length, segment_size, ascending)
    return _lookup(machine, key,
                   lambda: _compile_merge(key, length, segment_size, ascending))


def _compile_merge(key: tuple, length: int, seg: int,
                   ascending: bool) -> MovementPlan:
    dtype = _index_dtype(length)
    idx = np.arange(length)
    half = seg // 2
    inseg = idx % seg
    rev = np.where(inseg >= half, idx - inseg + seg - 1 - (inseg - half), idx)
    up = np.full(length, ascending)
    rounds: list[PlanRound] = []
    bits: list[int] = []
    j = half
    while j >= 1:
        rnd = _compile_round(idx, j, up, dtype)
        rounds.append(rnd)
        bits.append(rnd.bit)
        j >>= 1
    return MovementPlan(key, tuple(rounds), tuple(bits),
                        pre_permutation=rev.astype(dtype, copy=False),
                        shift_span=half)


def get_butterfly_partners(machine: Machine,
                           length: int) -> tuple[np.ndarray, ...]:
    """Partner-index arrays (``i ^ 2^r`` per round) for butterfly reduction."""
    key = ("butterfly", length)
    return _lookup(machine, key, lambda: _compile_butterfly(length))


def _compile_butterfly(length: int) -> tuple[np.ndarray, ...]:
    dtype = _index_dtype(length)
    idx = np.arange(length)
    partners = []
    d = 1
    while d < length:
        partners.append((idx ^ d).astype(dtype, copy=False))
        d <<= 1
    return tuple(partners)


def execute_plan(
    machine: Machine,
    plan: MovementPlan,
    keys: list[np.ndarray],
    payloads: list[np.ndarray],
    lex_gt: Callable[[list[np.ndarray], list[np.ndarray]], np.ndarray],
) -> None:
    """Replay a compiled plan over ``keys``/``payloads`` in place.

    Data movement is batched NumPy gathers/scatters over the precompiled
    index arrays; the simulated time is charged once through the plan's
    fused charge vector — bit-identical to the interpreted per-round
    charges (see the module docstring).
    """
    length = len(keys[0])
    arrays = (*keys, *payloads)
    if plan.pre_permutation is not None:
        rev = plan.pre_permutation
        for arr in arrays:
            arr[:] = arr[rev]
        machine.long_shift(length, plan.shift_span)
    for rnd in plan.rounds:
        a = [k[rnd.src_lo] for k in keys]
        b = [k[rnd.src_hi] for k in keys]
        swap = lex_gt(a, b)
        if swap.any():
            src = rnd.lower[swap]
            dst = rnd.upper[swap]
            for arr in arrays:
                tmp = arr[src].copy()
                arr[src] = arr[dst]
                arr[dst] = tmp
    if plan.bits:
        machine.exchange_sweep(length, plan.bits)
