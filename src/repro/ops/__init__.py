"""Data movement operations of Section 2.6 (Table 1).

Every operation takes a :class:`~repro.machines.machine.Machine` first and
charges simulated parallel time as it runs; the asymptotics of Table 1
emerge from the topology's per-round costs.
"""

from .bitonic import bitonic_merge, bitonic_sort, compare_exchange_round
from .concurrent import concurrent_read, concurrent_write, interval_locate
from .plans import (
    EXECUTORS,
    MovementPlan,
    clear_plan_cache,
    compiled_plans_enabled,
    get_executor,
    plan_cache_stats,
    set_compiled_plans,
    set_executor,
)
from .vexec import lower_keys, vexec_stats
from .route import pack, permute, unpack_lists
from .scan import (
    broadcast,
    fill_backward,
    fill_forward,
    parallel_prefix,
    parallel_suffix,
    semigroup,
)

__all__ = [
    "bitonic_merge", "bitonic_sort", "compare_exchange_round",
    "concurrent_read", "concurrent_write", "interval_locate",
    "pack", "permute", "unpack_lists",
    "broadcast", "fill_backward", "fill_forward",
    "parallel_prefix", "parallel_suffix", "semigroup",
    "MovementPlan", "EXECUTORS", "clear_plan_cache",
    "compiled_plans_enabled", "get_executor", "set_executor",
    "plan_cache_stats", "set_compiled_plans",
    "lower_keys", "vexec_stats",
]
