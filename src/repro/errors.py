"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by the library derive from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DegenerateSystemError(ReproError):
    """A point system violates the paper's input assumptions.

    Section 2.4 of the paper assumes that no pair of points has the same
    initial position (``f_i(0) != f_j(0)`` for ``i != j``) and that every
    coordinate trajectory is a polynomial of degree at most ``k``.
    """


class MachineConfigurationError(ReproError):
    """A simulated machine was constructed with an invalid configuration.

    For example a mesh whose size is not a power of four, or a hypercube
    whose size is not a power of two (Sections 2.2 and 2.3).
    """


class OperationContractError(ReproError):
    """A data-movement operation was invoked outside its contract.

    The operations of Section 2.6 assume, e.g., at most O(1) items per PE,
    sorted inputs for merging, or power-of-two string lengths for bitonic
    stages.  Violations raise this error rather than silently producing
    wrong answers.
    """


class RootFindingError(ReproError):
    """Polynomial root isolation failed to converge to requested tolerance."""
