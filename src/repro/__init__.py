"""repro — Dynamic Computational Geometry on Meshes and Hypercubes.

A from-scratch reproduction of Boxer & Miller (ICPP 1988): parallel
algorithms for geometric properties of systems of moving point-objects,
implemented over simulated mesh-connected and hypercube SIMD machines with
full parallel-time accounting.

Layers
------
``repro.kinetics``
    Polynomial trajectories, piecewise functions (pieces with gaps),
    Davenport–Schinzel machinery (Section 2.4–2.5).
``repro.machines``
    Lockstep machine simulators: mesh (four indexing schemes), hypercube
    (Gray-code ranked), PRAM and serial baselines; hypercube packet routing
    (Sections 2.2–2.3).
``repro.ops``
    The data movement operations of Section 2.6 / Table 1.
``repro.geometry``
    Comparison-generic static geometry: hulls, closest pairs, rotating
    calipers, minimum enclosing rectangles (Table 4).
``repro.core``
    The paper's contribution: envelope construction (Section 3), transient
    behaviour (Section 4, Table 2) and steady-state computations
    (Section 5, Table 3).
``repro.baselines``
    Serial (Atallah) and CREW PRAM (Chandran–Mount) comparators plus
    brute-force oracles (Sections 1 and 6).

Quickstart
----------
>>> from repro import random_system, closest_point_sequence, mesh_machine
>>> system = random_system(16, d=2, k=1, seed=7)
>>> machine = mesh_machine(64)
>>> seq = closest_point_sequence(machine, system)
>>> R = seq.labels()            # the chronological sequence of Theorem 4.1
>>> cost = machine.metrics.time # simulated parallel time
"""

from .analysis import ScalingFit, geometric_sizes, polylog_fit, power_fit, render_table
from .core import (
    AngleCurve,
    AngleFamily,
    all_hull_membership_intervals,
    CurveFamily,
    PolynomialFamily,
    angle_restrictions,
    closest_point_sequence,
    collides,
    collision_times,
    collision_times_with,
    combine_map,
    combine_map_serial,
    combine_pairwise,
    combine_pairwise_serial,
    containment_intervals,
    coordinate_extent_functions,
    distance_squared_functions,
    enclosing_cube_edge_function,
    envelope,
    envelope_serial,
    farthest_point_sequence,
    hull_membership_intervals,
    indicator_intervals,
    is_extreme_at,
    smallest_enclosing_cube_ever,
    threshold_indicator,
)
from .core.pairs import closest_pair_sequence, farthest_pair_sequence
from .core.steady import (
    SteadyValue,
    steady_is_extreme_angular,
    steady_antipodal_pairs,
    steady_closest_pair,
    steady_compare,
    steady_diameter_squared,
    steady_enclosing_rectangle,
    steady_farthest_neighbor,
    steady_farthest_pair,
    steady_hull,
    steady_is_extreme,
    steady_nearest_neighbor,
    steady_points,
    steady_rectangle_snapshot,
)
from .errors import (
    DegenerateSystemError,
    MachineConfigurationError,
    OperationContractError,
    ReproError,
    RootFindingError,
)
from .geometry import (
    antipodal_pairs,
    closest_pair,
    convex_hull,
    diameter_pair,
    enclosing_rectangle,
    rectangle_corners,
)
from .kinetics import (
    INF,
    Interval,
    Motion,
    Piece,
    PiecewiseFunction,
    PointSystem,
    Polynomial,
    certify_envelope,
    converging_swarm,
    crossing_traffic,
    divergent_system,
    expanding_swarm,
    extremal_sequence,
    inverse_ackermann,
    is_ds_sequence,
    lambda_bound,
    lambda_exact,
    lambda_hypercube_size,
    lambda_mesh_size,
    projectile_system,
    random_system,
    render_function,
    render_intervals,
    render_timeline,
    static_system,
)
from .machines import (
    Machine,
    ccc_machine,
    hypercube_machine,
    mesh_machine,
    pram_machine,
    serial_machine,
    shuffle_exchange_machine,
)

__version__ = "1.0.0"

__all__ = [
    # analysis
    "ScalingFit", "geometric_sizes", "polylog_fit", "power_fit", "render_table",
    # core — Section 3
    "CurveFamily", "PolynomialFamily", "envelope", "envelope_serial",
    "combine_pairwise", "combine_pairwise_serial", "combine_map",
    "combine_map_serial", "threshold_indicator",
    # core — Section 4
    "closest_point_sequence", "farthest_point_sequence",
    "distance_squared_functions", "collides", "collision_times",
    "collision_times_with", "AngleCurve", "AngleFamily",
    "all_hull_membership_intervals", "angle_restrictions",
    "hull_membership_intervals", "is_extreme_at", "containment_intervals",
    "coordinate_extent_functions", "enclosing_cube_edge_function",
    "indicator_intervals", "smallest_enclosing_cube_ever",
    "closest_pair_sequence", "farthest_pair_sequence",
    # core — Section 5
    "SteadyValue", "steady_compare", "steady_points",
    "steady_nearest_neighbor", "steady_farthest_neighbor",
    "steady_closest_pair", "steady_hull", "steady_is_extreme",
    "steady_is_extreme_angular",
    "steady_antipodal_pairs", "steady_farthest_pair",
    "steady_diameter_squared", "steady_enclosing_rectangle",
    "steady_rectangle_snapshot",
    # geometry
    "antipodal_pairs", "closest_pair", "convex_hull", "diameter_pair",
    "enclosing_rectangle", "rectangle_corners",
    # kinetics
    "INF", "Interval", "Motion", "Piece", "PiecewiseFunction", "PointSystem",
    "Polynomial", "certify_envelope", "converging_swarm", "crossing_traffic",
    "divergent_system", "expanding_swarm", "extremal_sequence",
    "inverse_ackermann", "is_ds_sequence", "lambda_bound",
    "lambda_exact", "lambda_hypercube_size", "lambda_mesh_size",
    "projectile_system", "random_system", "render_function",
    "render_intervals", "render_timeline", "static_system",
    # machines
    "Machine", "ccc_machine", "hypercube_machine", "mesh_machine",
    "pram_machine", "serial_machine", "shuffle_exchange_machine",
    # errors
    "ReproError", "DegenerateSystemError", "MachineConfigurationError",
    "OperationContractError", "RootFindingError",
]
