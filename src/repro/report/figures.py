"""Figure generators — the quantitative content of Figures 1–6."""

from __future__ import annotations

import math

import numpy as np

from ..analysis import geometric_sizes, power_fit
from ..core.envelope import envelope_serial
from ..core.family import PolynomialFamily
from ..geometry.antipodal import antipodal_pairs, antipodal_pairs_brute, diameter_pair
from ..geometry.convex_hull import convex_hull
from ..geometry.primitives import dist2
from ..kinetics.davenport_schinzel import (
    inverse_ackermann,
    lambda_bound,
    lambda_exact,
)
from ..kinetics.piecewise import INF, Piece, PiecewiseFunction
from ..kinetics.polynomial import Polynomial
from ..machines.indexing import (
    SCHEMES,
    adjacency_fraction,
    is_recursively_decomposable,
    max_consecutive_distance,
)
from ..machines.topology import HypercubeTopology, MeshTopology

TITLE = "Figures 1-6: models, indexing, envelopes, calipers"


# ----------------------------------------------------------------------
# Figures 1 & 3
# ----------------------------------------------------------------------
def topology_rows(sizes=None) -> list[list]:
    out = []
    for n in sizes or geometric_sizes(16, 4096, factor=4):
        mesh = MeshTopology(n)
        cube = HypercubeTopology(n)
        out.append([
            n,
            f"{mesh.diameter:.0f}",
            f"{2 * (int(np.sqrt(n)) - 1)}",
            2 * mesh.side * (mesh.side - 1),
            f"{cube.diameter:.0f}",
            int(np.log2(n)),
            n * cube.dim // 2,
        ])
    return out


def exchange_profile_rows(n: int = 1024) -> list[list]:
    mesh = MeshTopology(n)
    cube = HypercubeTopology(n)
    return [
        [bit, f"{mesh.exchange_distance(bit):.0f}",
         f"{cube.exchange_distance(bit):.0f}"]
        for bit in range(int(np.log2(n)))
    ]


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------
def bitonic_network_hops(scheme) -> int:
    """Total lockstep hop cost of the full bitonic network under a scheme."""
    n = scheme.side * scheme.side
    r, c = scheme.all_coords()
    ranks = np.arange(n)
    total = 0
    k = 2
    while k <= n:
        j = k >> 1
        while j >= 1:
            partner = ranks ^ j
            dist = np.abs(r - r[partner]) + np.abs(c - c[partner])
            total += int(dist.max())
            j >>= 1
        k <<= 1
    return total


def locality_rows(n: int = 1024) -> list[list]:
    out = []
    for name, make in SCHEMES.items():
        scheme = make(n)
        out.append([
            name,
            f"{adjacency_fraction(scheme):.3f}",
            max_consecutive_distance(scheme),
            "yes" if is_recursively_decomposable(scheme) else "no",
            bitonic_network_hops(scheme),
        ])
    return out


def scheme_sort_scaling(name: str, sizes=None):
    sizes = sizes or [64, 256, 1024, 4096]
    costs = [bitonic_network_hops(SCHEMES[name](n)) for n in sizes]
    return sizes, costs


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
def max_observed_pieces(n: int, degree: int, trials: int = 12) -> int:
    fam = PolynomialFamily(degree)
    worst = 0
    for trial in range(trials):
        rng = np.random.default_rng(1000 * degree + trial)
        fns = [Polynomial(rng.uniform(-10, 10, degree + 1)) for _ in range(n)]
        worst = max(worst, len(envelope_serial(fns, fam)))
    return worst


def tangent_lines(n: int) -> list[Polynomial]:
    """Tangents to the concave parabola -t^2: attains lambda(n, 1) = n."""
    return [Polynomial([(1.0 + i) ** 2, -2.0 * (1.0 + i)]) for i in range(n)]


def figure4_rows() -> list[list]:
    out = []
    for n in (4, 8, 16, 32, 64):
        for s in (1, 2):
            bound = lambda_exact(n, s)
            seen = max_observed_pieces(n, s)
            out.append([n, s, seen, bound,
                        "ok" if seen <= bound else "VIOLATION"])
    return out


def tightness_rows() -> list[list]:
    out = []
    for n in (4, 16, 64):
        env = envelope_serial(tangent_lines(n), PolynomialFamily(1))
        out.append([n, len(env), lambda_exact(n, 1),
                    "tight" if len(env) == n else "NOT TIGHT"])
    return out


def lambda_rows() -> list[list]:
    return [
        [n, lambda_exact(n, 1), lambda_exact(n, 2), lambda_bound(n, 3),
         inverse_ackermann(n)]
        for n in (4, 16, 64, 256, 1024, 10**6)
    ]


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
def partial_family(n: int, k_transitions: int, seed) -> list[PiecewiseFunction]:
    """n linear curves with ~2k defined/undefined switches each."""
    rng = np.random.default_rng(seed)
    fns = []
    for i in range(n):
        poly = Polynomial(rng.uniform(-10, 10, 2))
        cuts = np.sort(rng.uniform(0, 30, 2 * k_transitions))
        pieces = []
        lo, take = 0.0, True
        for c in list(cuts) + [INF]:
            if take and c - lo > 1e-6:
                pieces.append(Piece(lo, c, poly, i))
            take = not take
            lo = c
        fns.append(PiecewiseFunction(pieces, validate=False))
    return fns


def figure5_rows() -> list[list]:
    fam = PolynomialFamily(1)
    out = []
    for n in (8, 16, 32):
        for k in (1, 2, 3):
            worst = 0
            for trial in range(8):
                fns = partial_family(n, k, seed=100 * n + 10 * k + trial)
                worst = max(worst, len(envelope_serial(fns, fam)))
            bound = lambda_bound(n, 1 + 2 * k)
            out.append([n, k, worst, bound,
                        "ok" if worst <= bound else "VIOLATION"])
    return out


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
def convex_polygon(m: int, seed) -> list[tuple]:
    rng = np.random.default_rng(seed)
    pts = [((10 + rng.uniform(0, 2)) * math.cos(2 * math.pi * i / m),
            (10 + rng.uniform(0, 2)) * math.sin(2 * math.pi * i / m))
           for i in range(m)]
    hull = convex_hull(pts)
    return [pts[i] for i in hull]


def figure6_rows() -> list[list]:
    out = []
    for m in (4, 8, 16, 32, 64):
        poly = convex_polygon(m, seed=m)
        pairs = antipodal_pairs(poly)
        brute = antipodal_pairs_brute(poly)
        i, j = diameter_pair(poly)
        true_diam = max(dist2(a, b) for x, a in enumerate(poly)
                        for b in poly[x + 1:])
        out.append([
            len(poly), len(pairs), len(brute),
            "yes" if set(pairs) == set(brute) else "NO",
            "yes" if abs(dist2(poly[i], poly[j]) - true_diam) < 1e-9 else "NO",
        ])
    return out


def tables() -> list[tuple]:
    scaling = []
    for name in SCHEMES:
        sizes, costs = scheme_sort_scaling(name)
        scaling.append([name, costs[-1], power_fit(sizes, costs).describe()])
    return [
        ("Figures 1 & 3: machine structure",
         ["n", "mesh diameter", "2(sqrt n - 1)", "mesh links",
          "cube diameter", "log2 n", "cube links"],
         topology_rows()),
        ("Per-rank-bit exchange distances (n = 1024)",
         ["rank bit", "mesh hops (2^(b//2))", "hypercube hops"],
         exchange_profile_rows()),
        ("Figure 2: indexing schemes of a 32x32 mesh",
         ["scheme", "adjacent fraction", "max consecutive dist",
          "recursively decomposable", "bitonic network hops"],
         locality_rows()),
        ("Bitonic-network hop scaling by scheme",
         ["scheme", "hops (n=4096)", "fit"],
         scaling),
        ("Figure 4 / Lemma 2.2: envelope piece counts vs lambda(n, s)",
         ["n", "s", "max observed pieces", "lambda(n, s)", "check"],
         figure4_rows()),
        ("Worst case attained: tangent lines to a parabola (s = 1)",
         ["n", "envelope pieces", "lambda(n,1)", "status"],
         tightness_rows()),
        ("Theorem 2.3: lambda(n, s) and the inverse Ackermann function",
         ["n", "lambda(n,1)=n", "lambda(n,2)=2n-1", "lambda bound (s=3)",
          "alpha(n)"],
         lambda_rows()),
        ("Figure 5 / Lemma 3.3: partial envelopes vs lambda(n, s+2k)",
         ["n", "transitions k", "max observed pieces", "lambda bound",
          "check"],
         figure5_rows()),
        ("Figure 6 / Lemma 5.5: antipodal pairs by rotating calipers",
         ["hull size m", "calipers pairs", "sector-brute pairs",
          "sets equal", "diameter correct"],
         figure6_rows()),
    ]
