"""Table 1 generator — data movement operation times (Section 2.6).

See :mod:`repro.report` for the harness protocol.
"""

from __future__ import annotations

import numpy as np

from ..analysis import polylog_fit, power_fit
from ..machines.machine import hypercube_machine, mesh_machine
from ..machines.routing import randomized_sort_rounds
from ..ops import (
    bitonic_merge,
    bitonic_sort,
    broadcast,
    interval_locate,
    parallel_prefix,
    semigroup,
)

TITLE = "Table 1: data movement operations"

SIZES = [64, 256, 1024, 4096]

OPS = ["semigroup", "broadcast", "prefix", "merge", "sort", "grouping"]


def run_op(machine, name: str, n: int, rng) -> None:
    """Execute one Table 1 operation of size ``n`` on ``machine``."""
    data = rng.uniform(size=n)
    if name == "semigroup":
        semigroup(machine, data, np.minimum)
    elif name == "broadcast":
        marked = np.zeros(n, dtype=bool)
        marked[n // 3] = True
        broadcast(machine, data, marked)
    elif name == "prefix":
        parallel_prefix(machine, data, np.add)
    elif name == "merge":
        half = np.concatenate([np.sort(data[: n // 2]), np.sort(data[n // 2:])])
        bitonic_merge(machine, half)
    elif name == "sort":
        bitonic_sort(machine, data)
    elif name == "grouping":
        interval_locate(machine, np.sort(data[: n // 2]), data[n // 2:])
    else:
        raise ValueError(f"unknown Table 1 operation {name!r}")


def measure(machine_factory, op: str, sizes=None) -> list[float]:
    """Simulated parallel time of ``op`` across the size sweep."""
    rng = np.random.default_rng(0)
    times = []
    for n in sizes or SIZES:
        machine = machine_factory(n)
        run_op(machine, op, n, rng)
        times.append(machine.metrics.time)
    return times


def row(op: str) -> list:
    """One rendered table row — a pure function of the operation name.

    Module-level (picklable) so the size sweep can fan out over worker
    processes; each call reseeds its own RNG, so the row is identical no
    matter which process builds it.
    """
    mesh_t = measure(mesh_machine, op)
    cube_t = measure(hypercube_machine, op)
    expected = (
        f"{randomized_sort_rounds(SIZES[-1], seed=1):.0f} rounds"
        if op in ("sort", "grouping") else "= deterministic"
    )
    return [
        op,
        f"{mesh_t[-1]:.0f}",
        power_fit(SIZES, mesh_t).describe(),
        f"{cube_t[-1]:.0f}",
        f"(log n)^{polylog_fit(SIZES, cube_t):.2f}",
        expected,
    ]


def rows(jobs: int = 1) -> list[list]:
    from ..parallel import parallel_map

    return parallel_map(row, OPS, jobs=jobs)


def tables() -> list[tuple]:
    return [(
        f"Table 1 reproduction (sizes {SIZES[0]}..{SIZES[-1]})",
        ["operation", f"mesh t(n={SIZES[-1]})", "mesh fit",
         f"cube t(n={SIZES[-1]})", "cube fit", "cube expected (randomized)"],
        rows(),
    )]
