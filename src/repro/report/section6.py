"""Section 6 generator — native algorithms vs direct PRAM simulation."""

from __future__ import annotations

import numpy as np

from ..analysis import geometric_sizes
from ..baselines.pram import chandran_mount_steps, crcw_round_cost, simulation_cost
from ..core.envelope import envelope
from ..core.family import PolynomialFamily
from ..kinetics.polynomial import Polynomial
from ..machines.machine import hypercube_machine, mesh_machine

TITLE = "Section 6: native vs direct PRAM simulation"

SIZES = geometric_sizes(64, 4096, factor=4)
FAMILY = PolynomialFamily(1)


def curves(n: int, seed: int = 0) -> list[Polynomial]:
    rng = np.random.default_rng(seed)
    return [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(n)]


def rows(machine_factory) -> list[list]:
    out = []
    for n in SIZES:
        fns = curves(n)
        native = machine_factory(n)
        envelope(native, fns, FAMILY)
        sim = simulation_cost(machine_factory(n), n)
        out.append([
            n,
            f"{native.metrics.time:.0f}",
            f"{chandran_mount_steps(n):.0f}",
            f"{crcw_round_cost(machine_factory(n), n):.0f}",
            f"{sim:.0f}",
            f"{sim / native.metrics.time:.1f}x",
        ])
    return out


def tables() -> list[tuple]:
    headers = ["n", "native time", "PRAM steps (c log n)", "CR+CW cost",
               "simulation time", "simulation penalty"]
    return [
        ("Section 6: native mesh envelope vs PRAM simulation",
         headers, rows(mesh_machine)),
        ("Section 6: native hypercube envelope vs PRAM simulation",
         headers, rows(hypercube_machine)),
    ]
