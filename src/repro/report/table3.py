"""Table 3 generator — steady-state problems (Section 5)."""

from __future__ import annotations

from ..analysis import geometric_sizes, polylog_fit, power_fit
from ..core.steady.diameter import steady_antipodal_pairs, steady_farthest_pair
from ..core.steady.hull import steady_hull
from ..core.steady.neighbors import steady_closest_pair, steady_nearest_neighbor
from ..core.steady.rectangle import steady_enclosing_rectangle
from ..kinetics.motion import divergent_system
from ..machines.machine import hypercube_machine, mesh_machine

TITLE = "Table 3: steady-state problems"

SIZES = geometric_sizes(16, 256, factor=4)

PROBLEMS = {
    "nearest neighbor (5.2)": steady_nearest_neighbor,
    "closest pair (5.3)": steady_closest_pair,
    "hull vertices (5.4)": steady_hull,
    "antipodal/diameter (5.5-5.6)": steady_antipodal_pairs,
    "farthest pair (5.7)": steady_farthest_pair,
    "min rectangle (5.9)": steady_enclosing_rectangle,
}


def measure(fn, machine_factory) -> list[float]:
    times = []
    for n in SIZES:
        system = divergent_system(n, d=2, seed=n)
        machine = machine_factory(n)
        fn(machine, system)
        times.append(machine.metrics.time)
    return times


def rows() -> list[list]:
    out = []
    for name, fn in PROBLEMS.items():
        mesh_t = measure(fn, mesh_machine)
        cube_t = measure(fn, hypercube_machine)
        exp_t = measure(
            fn, lambda n: hypercube_machine(n, randomized=True)
        )
        out.append([
            name,
            f"{mesh_t[-1]:.0f}",
            power_fit(SIZES, mesh_t).describe(),
            f"{cube_t[-1]:.0f}",
            f"(log n)^{polylog_fit(SIZES, cube_t):.2f}",
            f"{exp_t[-1]:.0f}",
        ])
    return out


def tables() -> list[tuple]:
    return [(
        f"Table 3 reproduction (steady-state problems, n = {SIZES})",
        ["problem", "mesh t", "mesh fit", "cube t", "cube fit",
         "cube expected t (randomized)"],
        rows(),
    )]
