"""Ablation studies for the design choices DESIGN.md calls out.

Two questions the paper's constructions answer implicitly, made explicit:

* **Indexing ablation** — what would Table 1's mesh sort cost under each
  Figure 2 indexing scheme?  (Answer: only shuffled-row-major keeps the
  Thompson–Kung ``Theta(sqrt n)`` totals lowest; this is *why* the cost
  model assumes it.)
* **Recursion ablation** — why does Theorem 3.2 halve recursively instead
  of folding functions in one at a time?  Sequential insertion performs a
  ``Theta(lambda(i, s))``-sized combine per function, so its *parallel*
  time on the mesh is ``Theta(n sqrt n)`` against the recursive
  ``Theta(sqrt(lambda))`` — and the measured gap grows with n.
"""

from __future__ import annotations

import numpy as np

from ..analysis import power_fit
from ..core.envelope import combine_pairwise, envelope, normalize_inputs
from ..core.family import PolynomialFamily
from ..kinetics.polynomial import Polynomial
from ..machines.machine import Machine, mesh_machine
from ..machines.topology import MeshTopology
from ..ops import bitonic_sort

TITLE = "Ablations: indexing scheme and envelope recursion"

FAMILY = PolynomialFamily(1)


def sort_cost_by_scheme(sizes=None) -> list[list]:
    """Measured bitonic sort time under each mesh indexing cost model."""
    sizes = sizes or [64, 256, 1024, 4096]
    out = []
    for scheme in ("shuffled-row-major", "row-major", "snake-like",
                   "proximity"):
        times = []
        for n in sizes:
            machine = Machine(MeshTopology(n, scheme))
            rng = np.random.default_rng(0)
            bitonic_sort(machine, rng.uniform(size=n))
            times.append(machine.metrics.time)
        out.append([scheme, f"{times[-1]:.0f}",
                    power_fit(sizes, times).describe()])
    return out


def _curves(n: int, seed: int = 0) -> list[Polynomial]:
    rng = np.random.default_rng(seed)
    return [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(n)]


def insertion_envelope(machine, fns, family):
    """The ablated algorithm: fold functions into the envelope one by one.

    Each step is a full Lemma 3.1 combine against an envelope of growing
    size; the steps are inherently sequential, so their times add.
    """
    level = normalize_inputs(fns)
    acc = level[0]
    for f in level[1:]:
        acc = combine_pairwise(machine, acc, f, family)
    return acc


def recursion_rows(sizes=None) -> list[list]:
    sizes = sizes or [16, 64, 256]
    rec_t, ins_t = [], []
    for n in sizes:
        fns = _curves(n)
        m_rec = mesh_machine(4096)
        envelope(m_rec, fns, FAMILY)
        rec_t.append(m_rec.metrics.time)
        m_ins = mesh_machine(4096)
        insertion_envelope(m_ins, fns, FAMILY)
        ins_t.append(m_ins.metrics.time)
    out = []
    for n, r, i in zip(sizes, rec_t, ins_t):
        out.append([n, f"{r:.0f}", f"{i:.0f}", f"{i / r:.1f}x"])
    out.append(["fit", power_fit(sizes, rec_t).describe(),
                power_fit(sizes, ins_t).describe(), "-"])
    return out


def tables() -> list[tuple]:
    return [
        ("Ablation: mesh bitonic sort cost by indexing scheme",
         ["scheme", "time (n=4096)", "fit"],
         sort_cost_by_scheme()),
        ("Ablation: recursive halving vs sequential insertion (mesh)",
         ["n", "recursive (Thm 3.2)", "insertion", "penalty"],
         recursion_rows()),
    ]
