"""Table 2 generator — transient behaviour problems (Section 4)."""

from __future__ import annotations

from ..analysis import polylog_fit, power_fit
from ..core.collision import collision_times
from ..core.containment import (
    containment_intervals,
    enclosing_cube_edge_function,
    smallest_enclosing_cube_ever,
)
from ..core.hull_membership import hull_membership_intervals
from ..core.neighbors import closest_point_sequence
from ..kinetics.davenport_schinzel import lambda_mesh_size
from ..kinetics.motion import converging_swarm, crossing_traffic, random_system
from ..machines.machine import hypercube_machine, mesh_machine

TITLE = "Table 2: transient behaviour problems"

PROBLEMS = {
    "closest-seq (4.1)": (
        lambda n: random_system(n, d=2, k=1, seed=1),
        lambda m, s: closest_point_sequence(m, s),
        lambda n: lambda_mesh_size(n - 1, 2),
    ),
    "collisions (4.2)": (
        lambda n: crossing_traffic(n, seed=1),
        lambda m, s: collision_times(m, s),
        lambda n: n,
    ),
    "hull member (4.5)": (
        lambda n: random_system(n, d=2, k=1, seed=2, scale=5.0),
        lambda m, s: hull_membership_intervals(m, s),
        lambda n: lambda_mesh_size(n, 4),
    ),
    "fits box (4.6)": (
        lambda n: converging_swarm(n, seed=3),
        lambda m, s: containment_intervals(m, s, [40.0, 40.0]),
        lambda n: lambda_mesh_size(n, 1),
    ),
    "edge fn D(t) (4.7)": (
        lambda n: converging_swarm(n, seed=4),
        lambda m, s: enclosing_cube_edge_function(m, s),
        lambda n: lambda_mesh_size(n, 1),
    ),
    "min cube ever (4.8)": (
        lambda n: converging_swarm(n, seed=5),
        lambda m, s: smallest_enclosing_cube_ever(m, s),
        lambda n: lambda_mesh_size(n, 1),
    ),
}

SIZES = {
    "closest-seq (4.1)": [16, 64, 256],
    "collisions (4.2)": [16, 64, 256],
    "hull member (4.5)": [8, 16, 32],
    "fits box (4.6)": [16, 64, 256],
    "edge fn D(t) (4.7)": [16, 64, 256],
    "min cube ever (4.8)": [16, 64, 256],
}


def measure(problem: str, machine_factory) -> list[float]:
    make_system, run, _ = PROBLEMS[problem]
    times = []
    for n in SIZES[problem]:
        system = make_system(n)
        machine = machine_factory(4096)
        run(machine, system)
        times.append(machine.metrics.time)
    return times


def rows() -> list[list]:
    out = []
    for problem in PROBLEMS:
        sizes = SIZES[problem]
        _, _, pe_bound = PROBLEMS[problem]
        mesh_t = measure(problem, mesh_machine)
        cube_t = measure(problem, hypercube_machine)
        out.append([
            problem,
            pe_bound(sizes[-1]),
            f"{mesh_t[-1]:.0f}",
            power_fit(sizes, mesh_t).describe(),
            f"{cube_t[-1]:.0f}",
            f"(log n)^{polylog_fit(sizes, cube_t):.2f}",
        ])
    return out


def tables() -> list[tuple]:
    return [(
        "Table 2 reproduction (transient problems; per-problem n sweeps)",
        ["problem", "PEs (lambda bound, max n)", "mesh t", "mesh fit",
         "cube t", "cube fit"],
        rows(),
    )]
