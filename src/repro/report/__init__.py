"""The reproduction harness: regenerate every table and figure of the paper.

Each experiment module exposes ``TITLE`` and ``tables() -> list of
(title, headers, rows)``.  The benchmark suite (`benchmarks/`) asserts on
these rows under pytest-benchmark; this package also works standalone:

.. code-block:: console

   python -m repro.report             # everything
   python -m repro.report table1      # one experiment
   python -m repro.report --list      # what's available
"""

from __future__ import annotations

from typing import Callable

from ..analysis import render_table
from . import (
    ablations,
    architectures,
    validation,
    figures,
    section6,
    table1,
    table2,
    table3,
    table4,
)

__all__ = ["EXPERIMENTS", "run", "run_all", "run_captured",
           "run_captured_traced"]

#: Registry of experiment name -> module.
EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "figures": figures,
    "section6": section6,
    "ablations": ablations,
    "architectures": architectures,
    "validation": validation,
}


def run(name: str, out: Callable[[str], None] = print) -> list[tuple]:
    """Generate and print one experiment's tables; returns them."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    produced = EXPERIMENTS[name].tables()
    for title, headers, rows in produced:
        render_table(title, headers, rows, out=out)
    return produced


def run_all(out: Callable[[str], None] = print) -> dict[str, list[tuple]]:
    """Generate and print every experiment; returns them keyed by name."""
    return {name: run(name, out=out) for name in EXPERIMENTS}


def run_captured(name: str) -> str:
    """Generate one experiment, returning its rendered tables as a string.

    The worker entry point of ``python -m repro.report --jobs N``:
    experiments run in separate processes, and the parent prints the
    captured output in the requested order, so the rendered text is
    byte-identical to a serial run.
    """
    lines: list[str] = []
    run(name, out=lines.append)
    return "\n".join(lines)


def run_captured_traced(name: str) -> tuple[str, list[dict]]:
    """Like :func:`run_captured`, recording the run as a span forest.

    The worker entry point of ``python -m repro.report --trace PATH``: a
    local tracer wraps the experiment in one ``experiment`` span (simulated
    totals derived from the driver spans beneath it), and the serialized
    forest rides back to the parent alongside the rendered text.
    """
    from ..trace.tracer import Tracer

    lines: list[str] = []
    tracer = Tracer(name)
    with tracer:
        with tracer.span(name, category="experiment"):
            run(name, out=lines.append)
    return "\n".join(lines), tracer.to_dicts()
