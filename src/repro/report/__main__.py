"""CLI entry point: ``python -m repro.report [name ...]``.

Besides the table/figure experiments, two analysis subcommands ride
here: ``python -m repro.report trend`` walks the benchmark history
records (``benchmarks/history/*.jsonl``) and flags wall-clock
regressions between commits (see :mod:`repro.report.trend`), and
``python -m repro.report postmortem <file>`` renders a service
flight-recorder dump (see :mod:`repro.report.postmortem`).
"""

from __future__ import annotations

import argparse
import sys

from . import EXPERIMENTS, run_captured, run_captured_traced


def _diagnostics() -> None:
    """Host-side counters: the unified registry table plus wall-clock.

    Diagnostics only — these describe how fast the *simulator* ran, not the
    simulated-time numbers in the tables, which are independent of caching.
    Every cache (crossing, movement plans, charge memos) reports through
    the one shared :data:`repro.trace.registry.REGISTRY`.
    """
    from ..machines.metrics import global_wall_phases
    from ..trace.registry import REGISTRY

    print()
    print(REGISTRY.render_table())
    phases = sorted(global_wall_phases().items(), key=lambda kv: -kv[1])
    if phases:
        print("wall-clock by phase: "
              + ", ".join(f"{k}={v:.3f}s" for k, v in phases))


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["trend"]:
        # The trend analyser has its own flags (threshold, history dir)
        # that the experiment parser would reject — dispatch before it.
        from .trend import main as trend_main
        return trend_main(argv[1:])
    if argv[:1] == ["postmortem"]:
        from .postmortem import main as postmortem_main
        return postmortem_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all), or the "
                             "'trend' subcommand (see --help after it)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also print host-side diagnostics (crossing/"
                             "plan cache hit rates, per-phase wall-clock)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="generate experiments in N worker processes "
                             "(0 or negative: one per host core); output "
                             "order and content are unchanged")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record spans while generating and write a "
                             "Chrome trace_event JSON (one experiment span "
                             "per experiment, merged in request order)")
    args = parser.parse_args(argv)
    if args.list:
        for name, mod in EXPERIMENTS.items():
            print(f"{name:10s} {mod.TITLE}")
        return 0
    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; "
              f"choose from {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    from ..parallel import parallel_map

    if args.trace:
        spans: list[dict] = []
        for text, forest in parallel_map(run_captured_traced, names,
                                         jobs=args.jobs, chunk_size=1):
            print(text)
            spans.extend(forest)
        _export_report_trace(args, names, spans)
    else:
        for text in parallel_map(run_captured, names, jobs=args.jobs,
                                 chunk_size=1):
            print(text)
    if args.verbose:
        _diagnostics()
    return 0


def _export_report_trace(args, names: list[str], spans: list[dict]) -> None:
    from ..trace.export import write_chrome_trace
    from ..trace.provenance import provenance_manifest
    from ..trace.registry import registry_snapshot

    totals = {
        s["name"]: (s.get("sim") or {}).get("time") for s in spans
    }
    provenance = provenance_manifest(config={
        "mode": "report", "experiments": names, "jobs": args.jobs,
    })
    path = write_chrome_trace(args.trace, spans, provenance=provenance,
                              totals=totals, counters=registry_snapshot())
    print(f"trace written: {path} ({len(spans)} experiment spans); "
          f"summarize with: python -m repro.trace summarize {path}")


if __name__ == "__main__":
    raise SystemExit(main())
