"""CLI entry point: ``python -m repro.report [name ...]``."""

from __future__ import annotations

import argparse
import sys

from . import EXPERIMENTS, run, run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    args = parser.parse_args(argv)
    if args.list:
        for name, mod in EXPERIMENTS.items():
            print(f"{name:10s} {mod.TITLE}")
        return 0
    if not args.experiments:
        run_all()
        return 0
    for name in args.experiments:
        try:
            run(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
