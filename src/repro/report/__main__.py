"""CLI entry point: ``python -m repro.report [name ...]``."""

from __future__ import annotations

import argparse
import sys

from . import EXPERIMENTS, run_captured


def _diagnostics() -> None:
    """Host-side counters: crossing/plan cache hit rates, wall-clock.

    Diagnostics only — these describe how fast the *simulator* ran, not the
    simulated-time numbers in the tables, which are independent of caching.
    """
    from ..core.family import global_cache_stats
    from ..machines.metrics import global_wall_phases
    from ..ops.plans import plan_cache_stats

    stats = global_cache_stats()
    print(f"\ncrossing cache: {stats['hits']} hits / {stats['misses']} "
          f"misses (hit rate {stats['hit_rate']:.1%})")
    plans = plan_cache_stats()
    print(f"movement plans: {plans['hits']} hits / {plans['misses']} "
          f"misses (hit rate {plans['hit_rate']:.1%}, "
          f"compile {plans['compile_seconds']:.3f}s)")
    phases = sorted(global_wall_phases().items(), key=lambda kv: -kv[1])
    if phases:
        print("wall-clock by phase: "
              + ", ".join(f"{k}={v:.3f}s" for k, v in phases))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also print host-side diagnostics (crossing/"
                             "plan cache hit rates, per-phase wall-clock)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="generate experiments in N worker processes "
                             "(0 or negative: one per host core); output "
                             "order and content are unchanged")
    args = parser.parse_args(argv)
    if args.list:
        for name, mod in EXPERIMENTS.items():
            print(f"{name:10s} {mod.TITLE}")
        return 0
    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; "
              f"choose from {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    from ..parallel import parallel_map

    for text in parallel_map(run_captured, names, jobs=args.jobs,
                             chunk_size=1):
        print(text)
    if args.verbose:
        _diagnostics()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
