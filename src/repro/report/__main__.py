"""CLI entry point: ``python -m repro.report [name ...]``."""

from __future__ import annotations

import argparse
import sys

from . import EXPERIMENTS, run


def _diagnostics() -> None:
    """Host-side counters: crossing-cache hit rate, per-phase wall-clock.

    Diagnostics only — these describe how fast the *simulator* ran, not the
    simulated-time numbers in the tables, which are independent of caching.
    """
    from ..core.family import global_cache_stats
    from ..machines.metrics import global_wall_phases

    stats = global_cache_stats()
    print(f"\ncrossing cache: {stats['hits']} hits / {stats['misses']} "
          f"misses (hit rate {stats['hit_rate']:.1%})")
    phases = sorted(global_wall_phases().items(), key=lambda kv: -kv[1])
    if phases:
        print("wall-clock by phase: "
              + ", ".join(f"{k}={v:.3f}s" for k, v in phases))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also print host-side diagnostics (crossing-"
                             "cache hit rate, per-phase wall-clock)")
    args = parser.parse_args(argv)
    if args.list:
        for name, mod in EXPERIMENTS.items():
            print(f"{name:10s} {mod.TITLE}")
        return 0
    status = 0
    for name in args.experiments or list(EXPERIMENTS):
        try:
            run(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            status = 2
            break
    if args.verbose:
        _diagnostics()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
