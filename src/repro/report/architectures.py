"""The Section 1 closing remark: other architectures.

"It is possible that these algorithms can be implemented on other
architectures, such as the cube-connected cycles or shuffle-exchange
network, to give efficient algorithms for these architectures."

Everything in :mod:`repro.ops` is a *normal* algorithm (rank bits visited
in sequence), so CCC and shuffle-exchange emulate the hypercube versions
with constant slowdown.  This report runs the Theorem 3.2 envelope on all
four distributed networks and fits the growth: the three log-class
machines must share the hypercube's ``Theta(log^2 n)`` shape (constant
factors apart), with the mesh the only ``sqrt``-class machine.
"""

from __future__ import annotations

import numpy as np

from ..analysis import geometric_sizes, polylog_fit, power_fit
from ..core.envelope import envelope
from ..core.family import PolynomialFamily
from ..kinetics.polynomial import Polynomial
from ..machines.machine import (
    ccc_machine,
    hypercube_machine,
    mesh_machine,
    shuffle_exchange_machine,
)

TITLE = "Section 1 remark: CCC and shuffle-exchange implementations"

SIZES = geometric_sizes(64, 4096, factor=4)
FAMILY = PolynomialFamily(1)

NETWORKS = {
    "mesh": mesh_machine,
    "hypercube": hypercube_machine,
    "cube-connected cycles": ccc_machine,
    "shuffle-exchange": shuffle_exchange_machine,
}


def _curves(n: int, seed: int = 0) -> list[Polynomial]:
    rng = np.random.default_rng(seed)
    return [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(n)]


def rows() -> list[list]:
    out = []
    cube_times = None
    for name, mk in NETWORKS.items():
        times = []
        for n in SIZES:
            machine = mk(n)
            envelope(machine, _curves(n), FAMILY)
            times.append(machine.metrics.time)
        if name == "hypercube":
            cube_times = times
        fit = (power_fit(SIZES, times).describe() if name == "mesh"
               else f"(log n)^{polylog_fit(SIZES, times):.2f}")
        out.append([name, f"{times[-1]:.0f}", fit])
    # Constant-slowdown column relative to the hypercube.
    for row, (name, mk) in zip(out, NETWORKS.items()):
        if name in ("cube-connected cycles", "shuffle-exchange"):
            machine = mk(SIZES[-1])
            envelope(machine, _curves(SIZES[-1]), FAMILY)
            row.append(f"{machine.metrics.time / cube_times[-1]:.2f}x cube")
        else:
            row.append("-")
    return out


def tables() -> list[tuple]:
    return [(
        f"Envelope construction across networks (n = {SIZES})",
        ["network", f"time (n={SIZES[-1]})", "fit", "slowdown"],
        rows(),
    )]
