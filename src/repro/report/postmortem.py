"""``python -m repro.report postmortem <file>`` — render a flight dump.

Reads a ``repro.postmortem/1`` document (written by the service's
flight recorder on degradation or worker death, see
:mod:`repro.obs.recorder`) and renders the story an operator needs:
what failed, in which batch/shard, and the **full correlated event
chain** of every request the failure took down — reconstructed from the
recorder's bounded event ring by correlation id.

The renderer is read-only and pure: rendering a dump twice prints the
same bytes.
"""

from __future__ import annotations

import json
import pathlib

__all__ = ["load_postmortem", "render_postmortem", "main"]


def load_postmortem(path) -> dict:
    """Load and sanity-check one postmortem document."""
    doc = json.loads(pathlib.Path(path).read_text())
    if not isinstance(doc, dict) or "reason" not in doc:
        raise ValueError(f"not a postmortem document: {path}")
    schema = doc.get("schema")
    if schema != "repro.postmortem/1":
        raise ValueError(f"unsupported postmortem schema {schema!r}")
    return doc


def _fields(rec: dict, skip=("seq", "event", "cid")) -> str:
    return "  ".join(f"{k}={rec[k]}" for k in rec if k not in skip)


def _chain(events: list[dict], cid: str) -> list[dict]:
    return [rec for rec in events
            if rec.get("cid") == cid or cid in (rec.get("cids") or ())]


def _failing_cids(doc: dict) -> list[str]:
    """Request cids implicated by the dump, most specific source first."""
    context = doc.get("context") or {}
    cids = [c for c in (context.get("cids") or []) if c]
    if cids:
        return cids
    seen: list[str] = []
    for rec in doc.get("events", ()):
        if rec.get("event") == "failed":
            for c in [rec.get("cid"), *(rec.get("cids") or ())]:
                if c and c not in seen:
                    seen.append(c)
    return seen


def render_postmortem(doc: dict, cid: str | None = None,
                      max_chains: int = 8) -> str:
    """The operator-facing text rendering of one dump."""
    lines: list[str] = []
    context = doc.get("context") or {}
    lines.append(f"postmortem: reason={doc.get('reason')} "
                 f"({doc.get('schema')})")
    prov = doc.get("provenance") or {}
    sha = prov.get("git_sha") or "?"
    stamp = prov.get("timestamp") or "?"
    lines.append(f"  recorded at: {stamp}  git={str(sha)[:12]}")
    if context:
        lines.append(f"  context: {_fields(context, skip=('cids',))}")
    events = list(doc.get("events") or [])
    recorder = doc.get("recorder") or {}
    lines.append(f"  recorder: {len(events)} event(s) retained "
                 f"({recorder.get('events_dropped', 0)} dropped), "
                 f"{len(doc.get('spans') or [])} span(s)")
    cids = [cid] if cid else _failing_cids(doc)
    if not cids:
        lines.append("no failing correlation ids recorded")
    shown = cids[:max_chains]
    for c in shown:
        chain = _chain(events, c)
        lines.append(f"event chain [{c}] ({len(chain)} event(s)):")
        if not chain:
            lines.append("  (not retained — raise the recorder's "
                         "event capacity)")
        for rec in chain:
            lines.append(f"  seq {rec.get('seq', '?'):>6}  "
                         f"{rec.get('event', '?'):<18s} {_fields(rec)}")
    if len(cids) > len(shown):
        lines.append(f"... and {len(cids) - len(shown)} more failing "
                     f"request(s); rerun with --cid to inspect one")
    stats = (doc.get("stats") or {}).get("service") or {}
    if stats:
        keys = ("requests", "responses", "errors", "retries", "batches")
        summary = "  ".join(f"{k}={stats[k]}" for k in keys if k in stats)
        lines.append(f"service counters at dump: {summary}")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point for ``python -m repro.report postmortem``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.report postmortem",
        description="Render a repro.postmortem/1 flight-recorder dump "
                    "with the failing requests' correlated event chains.",
    )
    parser.add_argument("file", help="postmortem JSON file")
    parser.add_argument("--cid", default=None,
                        help="render this correlation id's chain only")
    parser.add_argument("--max-chains", type=int, default=8,
                        help="cap on rendered event chains (default: 8)")
    args = parser.parse_args(argv)
    try:
        doc = load_postmortem(args.file)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot load postmortem: {exc}")
        return 2
    print(render_postmortem(doc, cid=args.cid, max_chains=args.max_chains))
    return 0
