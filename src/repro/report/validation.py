"""Cross-level validation generator: abstract cost model vs micro machines.

Mesh side: broadcast/semigroup round counts of real grid programs must
track the model within a constant band, and shearsort must pay a widening
log-factor over the Thompson–Kung bitonic totals.  Hypercube side: the
micro machine's round counts must equal the model **exactly** (there is no
geometry to abstract on the cube).
"""

from __future__ import annotations

import numpy as np

from ..machines.machine import hypercube_machine, mesh_machine
from ..machines.micro import MicroMesh, broadcast_micro, reduce_all, shearsort
from ..machines.micro_cube import MicroHypercube, cube_bitonic_sort, cube_reduce
from ..ops import bitonic_sort, broadcast, semigroup

TITLE = "Cross-level validation: micro machines vs the cost model"

SIZES = [64, 256, 1024]


def micro_mesh_cost(program, n: int) -> float:
    m = MicroMesh(n)
    m.load("x", np.random.default_rng(0).uniform(size=n))
    program(m)
    return m.metrics.time


def mesh_rows() -> list[list]:
    rows = []
    for n in SIZES:
        micro_bc = micro_mesh_cost(lambda m: broadcast_micro(m, "x", 0, 0), n)
        model = mesh_machine(n)
        marked = np.zeros(n, dtype=bool)
        marked[0] = True
        broadcast(model, np.zeros(n), marked)
        model_bc = model.metrics.time

        micro_sg = micro_mesh_cost(
            lambda m: reduce_all(m, "x", np.minimum, np.inf), n
        )
        model2 = mesh_machine(n)
        semigroup(model2, np.zeros(n), np.minimum)
        model_sg = model2.metrics.time

        micro_ss = micro_mesh_cost(lambda m: shearsort(m, "x"), n)
        model3 = mesh_machine(n)
        bitonic_sort(model3, np.random.default_rng(1).uniform(size=n))
        model_bs = model3.metrics.time
        rows.append([
            n,
            f"{micro_bc:.0f}", f"{model_bc:.0f}", f"{micro_bc/model_bc:.2f}",
            f"{micro_sg:.0f}", f"{model_sg:.0f}", f"{micro_sg/model_sg:.2f}",
            f"{micro_ss:.0f}", f"{model_bs:.0f}", f"{micro_ss/model_bs:.1f}",
        ])
    return rows


def cube_rows() -> list[list]:
    rows = []
    for n in SIZES:
        data = np.random.default_rng(0).uniform(size=n)
        micro = MicroHypercube(n)
        micro.load("x", data)
        cube_bitonic_sort(micro, "x")
        model = hypercube_machine(n)
        bitonic_sort(model, data)
        micro2 = MicroHypercube(n)
        micro2.load("x", data)
        cube_reduce(micro2, "x", np.minimum)
        model2 = hypercube_machine(n)
        semigroup(model2, data, np.minimum)
        rows.append([
            n,
            micro.metrics.comm_rounds, int(model.metrics.comm_rounds),
            "exact" if micro.metrics.comm_rounds ==
            model.metrics.comm_rounds else "MISMATCH",
            micro2.metrics.comm_rounds, int(model2.metrics.comm_rounds),
            "exact" if micro2.metrics.comm_rounds ==
            model2.metrics.comm_rounds else "MISMATCH",
        ])
    return rows


def tables() -> list[tuple]:
    return [
        ("Mesh: micro machine vs abstract cost model",
         ["n", "bcast micro", "bcast model", "ratio",
          "semigroup micro", "semigroup model", "ratio",
          "shearsort micro", "bitonic model", "ratio (log-factor gap)"],
         mesh_rows()),
        ("Hypercube: micro machine vs abstract cost model (exactness)",
         ["n", "sort rounds micro", "sort rounds model", "sort",
          "reduce rounds micro", "reduce rounds model", "reduce"],
         cube_rows()),
    ]
