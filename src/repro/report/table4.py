"""Table 4 generator — static algorithms adapted for steady state."""

from __future__ import annotations

import math

import numpy as np

from ..analysis import geometric_sizes, polylog_fit, power_fit
from ..geometry.antipodal import antipodal_pairs
from ..geometry.closest_pair import closest_pair_parallel
from ..geometry.convex_hull import convex_hull, convex_hull_parallel
from ..geometry.rectangle import enclosing_rectangle_parallel
from ..machines.machine import hypercube_machine, mesh_machine

TITLE = "Table 4: static algorithms"

SIZES = geometric_sizes(16, 1024, factor=4)


def rand_points(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [tuple(p) for p in rng.uniform(-100, 100, (n, 2))]


def circle(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [((10 + rng.uniform(0, 1e-3)) * math.cos(2 * math.pi * i / n),
             (10 + rng.uniform(0, 1e-3)) * math.sin(2 * math.pi * i / n))
            for i in range(n)]


def sweep(fn, machine_factory, pts_fn) -> list[float]:
    times = []
    for n in SIZES:
        machine = machine_factory(n)
        fn(machine, pts_fn(n))
        times.append(machine.metrics.time)
    return times


def serial_antipodal_ops() -> list[int]:
    """Serial work model: n log n sort comparisons + calipers advances."""
    ops = []
    for n in SIZES:
        poly = circle(n, seed=n)
        hull = convex_hull(poly)
        count = int(n * math.log2(n))
        count += len(antipodal_pairs([poly[i] for i in hull])) * 2
        ops.append(count)
    return ops


def rows() -> list[list]:
    out = []
    cp_mesh = sweep(closest_pair_parallel, mesh_machine, rand_points)
    cp_cube = sweep(closest_pair_parallel, hypercube_machine, rand_points)
    out.append(["closest pair", "mesh", f"{cp_mesh[-1]:.0f}",
                power_fit(SIZES, cp_mesh).describe()])
    out.append(["closest pair", "hypercube", f"{cp_cube[-1]:.0f}",
                f"(log n)^{polylog_fit(SIZES, cp_cube):.2f}"])
    ch_mesh = sweep(convex_hull_parallel, mesh_machine, rand_points)
    ch_cube = sweep(convex_hull_parallel, hypercube_machine, rand_points)
    out.append(["convex hull", "mesh", f"{ch_mesh[-1]:.0f}",
                power_fit(SIZES, ch_mesh).describe()])
    out.append(["convex hull", "hypercube", f"{ch_cube[-1]:.0f}",
                f"(log n)^{polylog_fit(SIZES, ch_cube):.2f}"])
    ap = serial_antipodal_ops()
    out.append(["antipodal vertices", "serial", f"{ap[-1]:.0f}",
                power_fit(SIZES, ap).describe() + " (target n log n)"])
    er_cube = sweep(enclosing_rectangle_parallel, hypercube_machine, circle)
    out.append(["min encl. rectangle", "hypercube", f"{er_cube[-1]:.0f}",
                f"(log n)^{polylog_fit(SIZES, er_cube):.2f}"])
    return out


def tables() -> list[tuple]:
    return [(
        f"Table 4 reproduction (static algorithms, n = {SIZES})",
        ["algorithm", "model", f"t(n={SIZES[-1]})", "fit"],
        rows(),
    )]
