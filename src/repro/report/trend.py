"""Wall-clock trend analysis over the benchmark history files.

Every perf-sensitive bench appends one JSON record per full run to
``benchmarks/history/<bench>.jsonl`` — provenance (git sha, timestamp,
host) plus its headline wall-clock metrics.  This module walks those
files and flags **regressions between commits**: a wall-clock metric
that moved the wrong way by more than a relative threshold from one
record to the next, within the same benchmark tier (records of
different ``mode`` never compare — a smoke run is not a baseline for a
full run).

Only *wall-clock* metrics trend: simulated time is deterministic and
pinned by golden files (``repro.verify scaling``), so a simulated-time
change is a correctness problem, not a trend.  Metric direction is
inferred from the flattened path: ``seconds``/``latency``/``wall``
metrics are lower-is-better, ``throughput``/``speedup``/``qps`` are
higher-is-better, everything else is ignored.  Thresholds are generous
by default (25%) because shared CI hosts are noisy; ``--strict`` turns
any flagged regression into a nonzero exit for gating.

Since PR 9 the service benches also record full histogram bucket arrays
(``repro.obs`` log2 snapshots, fields named ``*_hist``).  Histogram
subtrees are *not* trend metrics — their counts and sums would register
as bogus directional leaves — so :func:`flatten_metrics` skips them,
which is also what makes mixed-schema history files (records predating
the histogram fields next to records carrying them) compare cleanly.
They power **SLO gating** instead: ``--slo p99_ms<50`` derives the
quantile from the newest record's bucket array and fails the gate on
violation (records without histograms are skipped, never a KeyError).

CLI::

    python -m repro.report trend [--history DIR] [--threshold PCT]
                                 [--strict] [--benches NAME ...]
                                 [--slo [FIELD:]pNN_ms<LIMIT ...]
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field

__all__ = ["DEFAULT_HISTORY_DIR", "Delta", "SloCheck", "TrendReport",
           "check_slos", "flatten_metrics", "load_history", "parse_slo",
           "trend"]

DEFAULT_HISTORY_DIR = (
    pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "history"
)

#: Subtrees that never hold wall-clock metrics.
_SKIP_KEYS = frozenset({"provenance", "params"})
_LOWER_BETTER = ("seconds", "latency", "wall")
_HIGHER_BETTER = ("throughput", "speedup", "qps")


def _direction(path: str) -> int:
    """-1: lower is better, +1: higher is better, 0: not a trend metric."""
    low = path.lower()
    if any(tok in low for tok in _HIGHER_BETTER):
        return 1
    if any(tok in low for tok in _LOWER_BETTER):
        return -1
    return 0


def _is_histogram(value) -> bool:
    """A ``repro.obs`` histogram snapshot (bucket array + range)."""
    return (isinstance(value, dict) and "buckets" in value
            and "lo" in value and "hi" in value)


def flatten_metrics(record: dict, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every trendable numeric leaf.

    Provenance and workload-parameter subtrees are skipped, and only
    leaves whose path classifies as a wall-clock metric survive.
    Histogram snapshots are skipped whole: their counts/sums are not
    directional metrics (``latency_hist.count`` is not a latency), and
    skipping them keeps mixed-schema history files — records written
    before the histogram fields existed next to records carrying them —
    comparable without a KeyError or a spurious delta.
    """
    out: dict[str, float] = {}
    for key, value in record.items():
        if key in _SKIP_KEYS:
            continue
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            if _is_histogram(value):
                continue
            out.update(flatten_metrics(value, f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            if _direction(path):
                out[path] = float(value)
    return out


def _sha(record: dict) -> str:
    sha = (record.get("provenance") or {}).get("git_sha") or "?"
    return str(sha)[:12]


def load_history(history_dir=DEFAULT_HISTORY_DIR,
                 benches=None) -> dict[str, list[dict]]:
    """Parsed records per bench, in append (run) order.

    Unparseable lines are skipped rather than fatal: a truncated append
    from an interrupted run must not take the trend tool down with it.
    """
    history_dir = pathlib.Path(history_dir)
    out: dict[str, list[dict]] = {}
    for path in sorted(history_dir.glob("*.jsonl")):
        name = path.stem
        if benches and name not in benches:
            continue
        records = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(rec, dict):
                records.append(rec)
        out[name] = records
    return out


@dataclass
class Delta:
    """One metric's move between two consecutive same-tier records."""

    bench: str
    mode: str
    metric: str
    before: float
    after: float
    change: float  # signed relative change, (after - before) / |before|
    regression: bool
    sha_before: str = "?"
    sha_after: str = "?"


@dataclass
class TrendReport:
    deltas: list[Delta] = field(default_factory=list)
    #: Benches with fewer than two comparable records (no trend yet).
    unpaired: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = []
        flagged = self.regressions
        if flagged:
            lines.append(f"{len(flagged)} wall-clock regression(s) flagged:")
            for d in flagged:
                arrow = "slower" if d.after > d.before else "worse"
                lines.append(
                    f"  {d.bench}[{d.mode}] {d.metric}: "
                    f"{d.before:g} -> {d.after:g} "
                    f"({d.change:+.1%} {arrow}; "
                    f"{d.sha_before} -> {d.sha_after})"
                )
        else:
            lines.append("no wall-clock regressions flagged")
        compared = {(d.bench, d.mode) for d in self.deltas}
        lines.append(
            f"compared {len(self.deltas)} metric pairs across "
            f"{len(compared)} bench tier(s)"
        )
        for name in self.unpaired:
            lines.append(f"  {name}: fewer than two comparable runs "
                         f"(no trend yet)")
        return "\n".join(lines)


def trend(history_dir=DEFAULT_HISTORY_DIR, threshold: float = 0.25,
          benches=None) -> TrendReport:
    """Compare consecutive same-tier records of every history file.

    ``threshold`` is the relative move that flags a regression: a
    lower-is-better metric growing by more than it, or a
    higher-is-better metric shrinking by more than it.  Improvements
    and sub-threshold noise are recorded in the deltas but not flagged.
    """
    report = TrendReport()
    for bench, records in load_history(history_dir, benches).items():
        by_mode: dict[str, list[dict]] = {}
        for rec in records:
            by_mode.setdefault(str(rec.get("mode", "?")), []).append(rec)
        paired = False
        for mode, runs in sorted(by_mode.items()):
            for prev, cur in zip(runs, runs[1:]):
                before, after = flatten_metrics(prev), flatten_metrics(cur)
                for metric in sorted(set(before) & set(after)):
                    a, b = before[metric], after[metric]
                    if a == 0:
                        continue
                    paired = True
                    change = (b - a) / abs(a)
                    worse = change * _direction(metric) < 0
                    report.deltas.append(Delta(
                        bench=bench, mode=mode, metric=metric,
                        before=a, after=b, change=change,
                        regression=worse and abs(change) > threshold,
                        sha_before=_sha(prev), sha_after=_sha(cur),
                    ))
        if not paired:
            report.unpaired.append(bench)
    return report


# ----------------------------------------------------------------------
# SLO gating over recorded histogram bucket arrays
# ----------------------------------------------------------------------
_SLO_RE = re.compile(
    r"^(?:(?P<field>[A-Za-z_][\w.]*):)?"
    r"p(?P<q>\d{1,2}(?:_\d+)?)_ms"
    r"(?P<op><=?)"
    r"(?P<limit>\d+(?:\.\d+)?)$"
)

#: The histogram field an unqualified ``pNN_ms<...`` spec reads.
DEFAULT_SLO_FIELD = "latency_hist"


@dataclass
class SloCheck:
    """One SLO evaluation against a bench's newest histogram record."""

    bench: str
    mode: str
    spec: str
    field: str
    value_ms: float | None  # None: no record carries the histogram field
    limit_ms: float
    ok: bool
    sha: str = "?"

    def render(self) -> str:
        if self.value_ms is None:
            return (f"  {self.bench}: no record carries {self.field!r} "
                    f"(SLO {self.spec} not evaluated)")
        verdict = "ok" if self.ok else "VIOLATED"
        return (f"  {self.bench}[{self.mode}] {self.spec}: "
                f"{self.value_ms:g} ms vs limit {self.limit_ms:g} ms "
                f"-> {verdict} ({self.sha})")


def parse_slo(spec: str) -> tuple[str, float, str, float]:
    """``[field:]pNN_ms<LIMIT`` -> (field, quantile, op, limit_ms)."""
    m = _SLO_RE.match(spec.strip())
    if not m:
        raise ValueError(
            f"bad SLO spec {spec!r}; expected e.g. p99_ms<50 or "
            f"update_hist:p50_ms<1.5")
    q = float(m.group("q").replace("_", ".")) / 100.0
    if not 0.0 < q <= 1.0:
        raise ValueError(f"bad SLO quantile in {spec!r}")
    return (m.group("field") or DEFAULT_SLO_FIELD, q, m.group("op"),
            float(m.group("limit")))


def _latest_with_field(records: list[dict], field_name: str):
    for rec in reversed(records):
        if _is_histogram(rec.get(field_name)):
            return rec
    return None


def check_slos(specs, history_dir=DEFAULT_HISTORY_DIR,
               benches=None) -> list[SloCheck]:
    """Evaluate each SLO spec against every bench's newest histogram.

    A spec gates the **latest** record (per history file) that carries
    its histogram field; older records and records predating the field
    are skipped — an SLO never KeyErrors on mixed-schema history.  The
    gated value is the histogram's deterministic upper-bound quantile
    (:meth:`repro.obs.hist.Log2Histogram.quantile`), converted to ms.
    """
    from ..obs.hist import Log2Histogram

    checks: list[SloCheck] = []
    history = load_history(history_dir, benches)
    for spec in specs:
        field_name, q, op, limit_ms = parse_slo(spec)
        for bench, records in sorted(history.items()):
            rec = _latest_with_field(records, field_name)
            if rec is None:
                checks.append(SloCheck(
                    bench=bench, mode="?", spec=spec, field=field_name,
                    value_ms=None, limit_ms=limit_ms, ok=True))
                continue
            hist = Log2Histogram.from_dict(rec[field_name])
            quant = hist.quantile(q)
            value_ms = (quant or 0.0) * 1000.0
            ok = value_ms < limit_ms if op == "<" else value_ms <= limit_ms
            checks.append(SloCheck(
                bench=bench, mode=str(rec.get("mode", "?")), spec=spec,
                field=field_name, value_ms=value_ms, limit_ms=limit_ms,
                ok=ok, sha=_sha(rec)))
    return checks


def main(argv=None) -> int:
    """Entry point for ``python -m repro.report trend``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.report trend",
        description="Flag wall-clock regressions across benchmark history "
                    "records (benchmarks/history/*.jsonl).",
    )
    parser.add_argument("--history", default=str(DEFAULT_HISTORY_DIR),
                        help="history directory (default: "
                             "benchmarks/history)")
    parser.add_argument("--threshold", type=float, default=25.0,
                        metavar="PCT",
                        help="relative move (percent) that flags a "
                             "regression (default: 25)")
    parser.add_argument("--benches", nargs="+", metavar="NAME",
                        help="restrict to these history files (stem names)")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when any regression is flagged")
    parser.add_argument("--slo", action="append", default=[],
                        metavar="[FIELD:]pNN_ms<LIMIT",
                        help="gate the newest recorded latency histogram "
                             "at a quantile, e.g. p99_ms<50 (repeatable; "
                             "a violation always exits nonzero)")
    args = parser.parse_args(argv)
    report = trend(args.history, threshold=args.threshold / 100.0,
                   benches=args.benches)
    print(report.render())
    slo_ok = True
    if args.slo:
        try:
            checks = check_slos(args.slo, args.history,
                                benches=args.benches)
        except ValueError as exc:
            print(f"bad --slo: {exc}")
            return 2
        print("SLO gates:")
        for check in checks:
            print(check.render())
        slo_ok = all(c.ok for c in checks)
    failed = (args.strict and not report.ok) or not slo_ok
    return 1 if failed else 0
