"""Process-parallel campaign engine.

Oracle campaigns, benchmark sweeps and report generation are embarrassingly
parallel: hundreds of independent instances, each a pure function of its
seed or its parameters.  This module is the one shared driver behind every
``--jobs N`` flag (``python -m repro.verify``, ``python -m repro.report``,
``benchmarks/_util.parallel_rows``):

* **deterministic inputs** — work items carry their own seeds/parameters;
  nothing is derived from worker identity, so the computation a worker
  performs is independent of *which* worker performs it;
* **chunked work queues** — items are grouped into contiguous chunks and
  submitted to a :class:`concurrent.futures.ProcessPoolExecutor`, keeping
  per-task pickling overhead amortised while still load-balancing across
  stragglers;
* **order-independent merging** — results are reassembled by item index,
  so the output list is identical for every jobs value and every
  completion order.  ``--jobs`` can change only *wall-clock*, never a
  result (the determinism contract of ``docs/verification.md``).

``jobs <= 1`` (or a single item) short-circuits to a plain in-process loop
with zero multiprocessing machinery, so serial behaviour is exactly the
pre-engine behaviour.  Worker functions must be module-level (picklable);
:func:`parallel_map` raises the usual pickling errors eagerly rather than
degrading silently — a campaign that cannot parallelise should say so.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable, Sequence

__all__ = ["resolve_jobs", "chunk_indices", "parallel_map"]


def resolve_jobs(jobs) -> int:
    """Normalise a ``--jobs`` value to a worker count.

    ``None`` and ``1`` mean serial; ``"auto"``, ``0`` and negative values
    mean one worker per host core (the ``xargs -P0`` convention).
    Anything else is taken literally (it is legal, if rarely useful, to
    exceed the core count).
    """
    if jobs is None or jobs == 1:
        return 1
    if jobs == "auto" or int(jobs) <= 0:
        return max(1, os.cpu_count() or 1)
    return int(jobs)


def chunk_indices(n_items: int, jobs: int, chunk_size: int | None = None):
    """Yield ``(start, stop)`` chunk bounds covering ``range(n_items)``.

    The default chunk size aims at ~4 chunks per worker so early-finishing
    workers can steal load, while keeping chunks large enough that the
    per-chunk submission cost stays negligible.
    """
    if chunk_size is None:
        chunk_size = max(1, n_items // (jobs * 4) or 1)
    for start in range(0, n_items, chunk_size):
        yield start, min(start + chunk_size, n_items)


def _run_chunk(fn: Callable, items: Sequence) -> list:
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable,
    items: Iterable,
    *,
    jobs=1,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list:
    """``[fn(x) for x in items]`` across processes, deterministically.

    Returns results in item order regardless of completion order.  ``fn``
    must be picklable (module-level) when ``jobs > 1``; ``progress`` is
    called with ``(done_items, total_items)`` after each finished chunk.
    """
    items = list(items)
    total = len(items)
    n_workers = resolve_jobs(jobs)
    if n_workers <= 1 or total <= 1:
        out = []
        for i, item in enumerate(items):
            out.append(fn(item))
            if progress:
                progress(i + 1, total)
        return out

    bounds = list(chunk_indices(total, n_workers, chunk_size))
    results: list = [None] * total
    done = 0
    with ProcessPoolExecutor(max_workers=min(n_workers, len(bounds))) as pool:
        futures = {
            pool.submit(_run_chunk, fn, items[start:stop]): (start, stop)
            for start, stop in bounds
        }
        pending = set(futures)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in finished:
                start, stop = futures[fut]
                results[start:stop] = fut.result()
                done += stop - start
                if progress:
                    progress(done, total)
    return results
