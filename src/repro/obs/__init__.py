"""Operational telemetry: histograms, event logs, stats, flight recorder.

The runtime half of the observability story.  :mod:`repro.trace` (PR 4)
records what a *finished* run did — spans, provenance, counters;
:mod:`repro.obs` makes the *running* service introspectable:

* :mod:`~repro.obs.hist` — deterministic fixed-bucket log2 histograms
  with exact merge, for latency/size/depth distributions;
* :mod:`~repro.obs.events` — bounded structured lifecycle event logs
  keyed by correlation ids;
* :mod:`~repro.obs.recorder` — the flight recorder and its
  ``repro.postmortem/1`` dumps;
* :mod:`~repro.obs.telemetry` — the per-service bundle of all three,
  mirrored into the process-wide metrics registry;
* :mod:`~repro.obs.prom` — Prometheus-style text exposition of the
  ``repro.obs/1`` stats snapshot.

Contracts (docs/operations.md): telemetry reads only the host clock and
never a simulated charge; every buffer is bounded, drop-accounted, and
clearable; event ordering is sequence-numbered, never wall-clock-tied.
"""

from .events import EVENTS, EventLog
from .hist import Log2Histogram, merge_histograms
from .prom import render_prometheus
from .recorder import POSTMORTEM_SCHEMA, FlightRecorder
from .telemetry import HIST_SPECS, STATS_SCHEMA, ServiceTelemetry

__all__ = [
    "EVENTS",
    "EventLog",
    "FlightRecorder",
    "HIST_SPECS",
    "Log2Histogram",
    "POSTMORTEM_SCHEMA",
    "STATS_SCHEMA",
    "ServiceTelemetry",
    "merge_histograms",
    "render_prometheus",
]
