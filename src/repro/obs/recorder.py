"""The flight recorder: recent events + spans, dumped on failure.

A :class:`FlightRecorder` keeps the **most recent** lifecycle events and
span dicts in bounded rings — cheap enough to run always-on — so that
when the service degrades (a batch exhausts its retries into a
``ServiceError``) or a worker dies, :meth:`dump` can write a
provenance-stamped ``repro.postmortem/1`` file capturing what the
service was doing *just before* the failure.  ``python -m repro.report
postmortem <file>`` renders the dump, grouping the failing request's
full correlated event chain by ``cid``.

Like every telemetry buffer in :mod:`repro.obs`, the rings are bounded
with exact drop accounting and clearable (RPR004/RPR009); the recorder
itself reads no clock — the provenance manifest stamped into a dump is
the only timestamp, taken once at dump time.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque

__all__ = ["POSTMORTEM_SCHEMA", "FlightRecorder"]

POSTMORTEM_SCHEMA = "repro.postmortem/1"


class FlightRecorder:
    """Bounded rings of recent events and spans + the postmortem dump."""

    def __init__(self, event_capacity: int = 512, span_capacity: int = 256):
        self.event_capacity = max(0, int(event_capacity))
        self.span_capacity = max(0, int(span_capacity))
        # Deque rings: O(1) eviction keeps always-on recording cheap at
        # serving rates (a list ring memmoves on every overflow drop).
        self._events: deque = deque(maxlen=self.event_capacity or None)
        self._spans: deque = deque(maxlen=self.span_capacity or None)
        self.events_dropped = 0
        self.spans_dropped = 0
        self.dumps = 0

    @property
    def events(self) -> list[dict]:
        """The retained event ring, oldest first."""
        return list(self._events)

    @property
    def spans(self) -> list[dict]:
        """The retained span ring, oldest first."""
        return list(self._spans)

    # ------------------------------------------------------------------
    def record_event(self, rec: dict) -> None:
        if self.event_capacity <= 0:
            return
        if len(self._events) >= self.event_capacity:
            self.events_dropped += 1  # the deque evicts the oldest itself
        self._events.append(rec)

    def record_span(self, span: dict) -> None:
        if self.span_capacity <= 0:
            return
        if len(self._spans) >= self.span_capacity:
            self.spans_dropped += 1  # the deque evicts the oldest itself
        self._spans.append(span)

    # ------------------------------------------------------------------
    def document(self, reason: str, context: dict | None = None,
                 stats: dict | None = None,
                 provenance: bool = True) -> dict:
        """The postmortem document (what :meth:`dump` writes)."""
        from ..trace.provenance import provenance_manifest

        doc = {
            "schema": POSTMORTEM_SCHEMA,
            "reason": reason,
            "context": dict(context or {}),
            "events": list(self._events),
            "spans": list(self._spans),
            "stats": dict(stats or {}),
            "recorder": self.stats(),
        }
        if provenance:
            doc["provenance"] = provenance_manifest(
                config={"mode": "postmortem", "reason": reason})
        return doc

    def dump(self, path, reason: str, context: dict | None = None,
             stats: dict | None = None,
             provenance: bool = True) -> pathlib.Path:
        """Write the postmortem file for ``reason``; returns its path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = self.document(reason, context, stats, provenance)
        path.write_text(json.dumps(doc, indent=1, default=str) + "\n")
        self.dumps += 1
        return path

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "events": len(self._events),
            "event_capacity": self.event_capacity,
            "events_dropped": self.events_dropped,
            "spans": len(self._spans),
            "span_capacity": self.span_capacity,
            "spans_dropped": self.spans_dropped,
            "dumps": self.dumps,
        }

    def clear(self) -> None:
        self._events.clear()
        self._spans.clear()
