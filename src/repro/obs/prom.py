"""Prometheus-style text exposition of a ``repro.obs/1`` snapshot.

Renders the :meth:`QueryService.stats()` snapshot in the classic
text-based exposition format: counters as untyped gauges, histograms as
cumulative ``_bucket{le="..."}`` series with ``_sum``/``_count`` — the
shape every metrics scraper already parses.  The renderer is a pure
function of the snapshot dict (no clocks, no registry reads), so the
same snapshot always renders the same bytes; ordering is sorted-name
deterministic.

Names are sanitised to the metric charset ``[a-zA-Z0-9_]`` and prefixed
``repro_service_``; nested counter groups flatten with ``_`` (so
``cache.hits`` becomes ``repro_service_cache_hits``).
"""

from __future__ import annotations

import math

__all__ = ["render_prometheus"]

_PREFIX = "repro_service_"


def _metric_name(*parts: str) -> str:
    raw = "_".join(p for p in parts if p)
    return _PREFIX + "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch == "_")) else "_"
        for ch in raw
    )


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    if value is True or value is False:
        return str(int(value))
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _flat_numbers(tree: dict, prefix: str = "") -> list[tuple[str, object]]:
    out: list[tuple[str, object]] = []
    for key in sorted(tree):
        value = tree[key]
        path = f"{prefix}_{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.extend(_flat_numbers(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append((path, value))
    return out


def _render_histogram(name: str, doc: dict, lines: list[str]) -> None:
    from .hist import Log2Histogram

    hist = Log2Histogram.from_dict(doc)
    metric = _metric_name(name)
    lines.append(f"# TYPE {metric} histogram")
    for le, cum in hist.cumulative():
        bound = "+Inf" if math.isinf(le) else repr(le)
        lines.append(f'{metric}_bucket{{le="{bound}"}} {cum}')
    lines.append(f"{metric}_sum {_fmt(hist.total)}")
    lines.append(f"{metric}_count {hist.count}")


def render_prometheus(snapshot: dict) -> str:
    """The text exposition of one ``repro.obs/1`` stats snapshot."""
    lines: list[str] = []
    schema = snapshot.get("schema")
    if schema:
        lines.append(f"# repro stats snapshot schema={schema}")
    for section in ("uptime", "counters", "cache", "dynamic", "pools",
                    "events", "recorder"):
        tree = snapshot.get(section)
        if not isinstance(tree, dict):
            continue
        for path, value in _flat_numbers(tree, section):
            metric = _metric_name(path)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(value)}")
    for name in sorted(snapshot.get("histograms") or {}):
        doc = snapshot["histograms"][name]
        if isinstance(doc, dict) and doc.get("kind") == "log2":
            _render_histogram(name, doc, lines)
    return "\n".join(lines) + "\n"
