"""Deterministic fixed-bucket log2 histograms.

The operational-telemetry counterpart of the repo's exact counters: a
:class:`Log2Histogram` summarises a value distribution (request latency,
batch size, queue depth, worker turnaround) in **fixed, pre-declared
buckets** whose boundaries are exact powers of two of a base resolution.
Fixedness is the point:

* **deterministic** — the bucket of a value is a pure function of the
  value and the declared ``(lo, hi)`` range (one ``math.frexp`` call, no
  float logs whose libm rounding could flip a boundary case), so the same
  samples always produce the same bucket array;
* **exactly mergeable** — two histograms with the same declared range
  merge by bucket-wise integer addition (plus exact count/sum/min/max
  combination).  Merging per-shard or per-size histograms is therefore
  associative and jobs-invariant: any grouping of the same observations
  yields the same merged state, the same discipline as the campaign
  engine's merge-by-index;
* **bounded** — the bucket array is allocated once at construction
  (``n + 2`` cells: underflow, ``n`` value buckets, overflow) and never
  grows, so a histogram on a hot path can never become ballast (RPR004's
  spirit applied to telemetry).

Quantiles are derived from the bucket array as the **upper bound** of the
bucket holding the target rank — a deterministic, conservative estimate
that is within one bucket's resolution (a factor of two) of the exact
sorted-sample percentile, which the benchmark harnesses assert per run.

Histograms never touch the simulated clocks: they summarise host-side
values handed to :meth:`Log2Histogram.observe` and are pure arithmetic
otherwise, so enabling them cannot perturb a single simulated charge.
"""

from __future__ import annotations

import math

__all__ = ["Log2Histogram", "merge_histograms"]

#: Snapshot schema tag carried by :meth:`Log2Histogram.to_dict`.
HIST_SCHEMA = "repro.hist/1"


class Log2Histogram:
    """Fixed log2 buckets over ``[lo, hi)`` plus underflow/overflow.

    ``lo`` is the base resolution (everything below it lands in the
    underflow bucket) and ``hi`` the saturation bound (everything at or
    above it lands in the overflow bucket); both must be exact powers of
    two of each other — ``hi == lo * 2**n`` — so bucket ``i`` (for
    ``1 <= i <= n``) covers exactly ``[lo * 2**(i-1), lo * 2**i)``.

    Alongside the buckets, ``count``/``total``/``vmin``/``vmax`` are
    tracked exactly, so means and extremes never suffer bucket
    resolution.
    """

    __slots__ = ("name", "unit", "lo", "hi", "n", "buckets",
                 "count", "total", "vmin", "vmax")

    def __init__(self, name: str, *, lo: float, hi: float, unit: str = ""):
        if not (lo > 0 and hi > lo):
            raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
        n = int(round(math.log2(hi / lo)))
        if lo * (2.0 ** n) != hi:
            raise ValueError(
                f"hi must be lo * 2**n exactly, got lo={lo!r} hi={hi!r}")
        self.name = name
        self.unit = unit
        self.lo = float(lo)
        self.hi = float(hi)
        self.n = n
        #: Fixed-size counts: [underflow, bucket 1..n, overflow].
        self.buckets = [0] * (n + 2)
        self.count = 0
        self.total = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def bucket_of(self, value: float) -> int:
        """The bucket index of ``value`` — pure integer/frexp arithmetic.

        ``frexp(value / lo)`` yields ``(m, e)`` with ``m`` in ``[0.5,
        1)``; for a ratio in ``[2**(e-1), 2**e)`` the covering bucket is
        exactly ``e``, with no transcendental call whose rounding could
        flip a power-of-two boundary.
        """
        if value < self.lo:
            return 0
        if value >= self.hi:
            return self.n + 1
        _, e = math.frexp(value / self.lo)
        return min(max(e, 1), self.n)

    def observe(self, value: float) -> None:
        """Record one sample (exact count/sum/extremes + one bucket).

        The bucket arithmetic of :meth:`bucket_of` is inlined — this is
        the per-sample hot path on the serving loop.
        """
        value = float(value)
        if value < self.lo:
            idx = 0
        elif value >= self.hi:
            idx = self.n + 1
        else:
            idx = math.frexp(value / self.lo)[1]
            if idx < 1:
                idx = 1
            elif idx > self.n:
                idx = self.n
        self.buckets[idx] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def upper_bound(self, index: int) -> float:
        """The inclusive upper edge reported for bucket ``index``.

        Underflow reports ``lo`` (its true upper edge); overflow reports
        ``inf`` — an overflowed quantile is explicitly saturated rather
        than silently clamped to ``hi``.
        """
        if index <= 0:
            return self.lo
        if index > self.n:
            return math.inf
        return self.lo * (2.0 ** index)

    def quantile(self, q: float) -> float | None:
        """The deterministic upper-bound estimate of the ``q`` quantile.

        Returns the upper edge of the bucket containing the rank
        ``ceil(q * count)`` sample — within one bucket's resolution (a
        factor of two) above the exact sorted-sample value.  ``None`` on
        an empty histogram.
        """
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self.buckets):
            seen += c
            if seen >= rank:
                return self.upper_bound(i)
        return self.upper_bound(self.n + 1)  # pragma: no cover - guarded

    def percentiles(self, qs=(0.50, 0.90, 0.99)) -> dict:
        """``{"p50": ..., "p90": ...}`` for the requested quantiles."""
        out = {}
        for q in qs:
            label = f"{q * 100:g}".replace(".", "_")
            out[f"p{label}"] = self.quantile(q)
        return out

    @property
    def mean(self) -> float | None:
        return (self.total / self.count) if self.count else None

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs.

        The final pair's bound is ``inf`` and its count equals
        :attr:`count` — the classic ``le="+Inf"`` bucket.
        """
        out = []
        acc = 0
        for i, c in enumerate(self.buckets):
            acc += c
            out.append((self.upper_bound(i), acc))
        return out

    # ------------------------------------------------------------------
    # Exact merge
    # ------------------------------------------------------------------
    def merge(self, other: "Log2Histogram") -> "Log2Histogram":
        """Bucket-wise add ``other`` into ``self`` (exact, associative).

        Both histograms must declare the same ``(lo, hi)`` range — a
        silent range coercion would destroy the merge-invariance
        contract.  Returns ``self`` for chaining.
        """
        if (other.lo, other.hi) != (self.lo, self.hi):
            raise ValueError(
                f"cannot merge histograms of different ranges: "
                f"({self.lo}, {self.hi}) vs ({other.lo}, {other.hi})")
        for i, c in enumerate(other.buckets):
            self.buckets[i] += c
        self.count += other.count
        self.total += other.total
        if other.vmin is not None and (self.vmin is None
                                       or other.vmin < self.vmin):
            self.vmin = other.vmin
        if other.vmax is not None and (self.vmax is None
                                       or other.vmax > self.vmax):
            self.vmax = other.vmax
        return self

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-plain snapshot (bucket array + exact aggregates)."""
        return {
            "schema": HIST_SCHEMA,
            "kind": "log2",
            "name": self.name,
            "unit": self.unit,
            "lo": self.lo,
            "hi": self.hi,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "buckets": list(self.buckets),
        }

    def summary(self, qs=(0.50, 0.99)) -> dict:
        """The compact form registry snapshots embed (no bucket array)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            **self.percentiles(qs),
        }

    @staticmethod
    def from_dict(doc: dict) -> "Log2Histogram":
        """Rebuild a histogram from :meth:`to_dict` output (lossless)."""
        if doc.get("kind") != "log2":
            raise ValueError(f"not a log2 histogram snapshot: "
                             f"{doc.get('kind')!r}")
        hist = Log2Histogram(doc.get("name", ""), lo=doc["lo"],
                             hi=doc["hi"], unit=doc.get("unit", ""))
        buckets = [int(c) for c in doc["buckets"]]
        if len(buckets) != len(hist.buckets):
            raise ValueError(
                f"bucket array length {len(buckets)} does not match the "
                f"declared range ({hist.n + 2} buckets)")
        hist.buckets = buckets
        hist.count = int(doc["count"])
        hist.total = float(doc["sum"])
        hist.vmin = doc.get("min")
        hist.vmax = doc.get("max")
        return hist

    def clear(self) -> None:
        """Zero every bucket and aggregate (the range stays declared)."""
        self.buckets = [0] * (self.n + 2)
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Log2Histogram({self.name!r}, count={self.count}, "
                f"lo={self.lo:g}, hi={self.hi:g})")


def merge_histograms(hists) -> Log2Histogram | None:
    """Merge an iterable of same-range histograms into a fresh one.

    Returns ``None`` for an empty iterable.  The result is independent of
    grouping: ``merge_histograms([a, b, c])`` equals any nested merge of
    the same histograms (bucket counts are integers; sums are added in
    the given order, so pass a deterministic order for float-exactness).
    """
    merged: Log2Histogram | None = None
    for h in hists:
        if merged is None:
            merged = Log2Histogram(h.name, lo=h.lo, hi=h.hi, unit=h.unit)
        merged.merge(h)
    return merged
