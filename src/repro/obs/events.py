"""Structured lifecycle event logs with correlation ids.

One :class:`EventLog` per service instance records the request lifecycle
as **structured dicts** (never formatted strings — RPR009 flags f-string
payloads at emission sites): every record carries the event name from the
fixed :data:`EVENTS` vocabulary, a monotone sequence number, and the
correlation id (``cid``) minted when the request entered the service and
propagated through planner batches, worker payloads, retries, and spans.
One grep for a ``cid`` across the stream reconstructs a request's whole
path — received, batched (batch-scoped, member cids in ``cids``),
dispatched (per attempt), completed or failed.

Ordering discipline: event order is the **sequence number**, assigned at
emission on the single-threaded event loop — never a wall-clock value
whose ties would make two replays disagree.  The log itself reads no
clock at all; any timing a consumer wants lives in the histograms and
span wall fields, keeping the stream deterministic for a deterministic
arrival order.

Hygiene discipline (RPR004/RPR009): the in-memory ring is **bounded**
(``capacity``, oldest dropped with an exact ``dropped`` count) and
**clearable**; an optional JSONL sink mirrors every record to a file for
offline grep when durability matters more than memory.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque

__all__ = ["EVENTS", "EventLog"]

#: The fixed lifecycle vocabulary.  Emission outside it is a ValueError:
#: a typo'd event name would silently break every grep that relies on it.
EVENTS = frozenset({
    "request_received",   # a request passed validation and entered the queue
    "batched",            # the planner formed a batch unit (member cids)
    "dispatched",         # a batch attempt crossed into a shard worker
    "completed",          # the request's response future resolved
    "failed",             # the request (or its batch) errored/degraded
    "mutation_applied",   # a dynamic-family write landed
    "cache_invalidated",  # a mutation evicted cached run keys
})


class EventLog:
    """A bounded, clock-free ring of structured lifecycle events."""

    def __init__(self, capacity: int = 4096, path=None):
        self.capacity = max(0, int(capacity))
        # A deque ring: appends and evictions are O(1), so emission cost
        # is independent of capacity (a list's ``del ring[0]`` memmoves
        # the whole ring on every drop — measurable at serving rates).
        self.records: deque = deque(maxlen=self.capacity or None)
        self.emitted = 0
        self.dropped = 0
        self._seq = 0
        self._path = pathlib.Path(path) if path is not None else None
        self._sink = None

    # ------------------------------------------------------------------
    def emit(self, event: str, cid: str | None = None, **fields) -> dict:
        """Append one structured record; returns it.

        ``fields`` must already be structured values (the JSONL sink
        serialises them as-is) — callers pass ``code="bad_request"``,
        never a pre-formatted message string.
        """
        if event not in EVENTS:
            raise ValueError(f"unknown event {event!r}; "
                             f"vocabulary: {sorted(EVENTS)}")
        fields["event"] = event
        fields["cid"] = cid
        return self.append_record(fields)

    def append_record(self, rec: dict) -> dict:
        """Stamp the next sequence number onto ``rec`` and retain it.

        The validated hot path: ``rec`` must already carry ``event`` and
        ``cid`` (:meth:`emit` and :meth:`ServiceTelemetry.emit
        <repro.obs.telemetry.ServiceTelemetry.emit>` both funnel here so
        one dict serves the log, the recorder, and the sink).
        """
        rec["seq"] = self._seq
        self._seq += 1
        self.emitted += 1
        if self.capacity > 0:
            if len(self.records) >= self.capacity:
                self.dropped += 1  # the deque evicts the oldest itself
            self.records.append(rec)
        if self._path is not None:
            self._write_sink(rec)
        return rec

    def _write_sink(self, rec: dict) -> None:
        """Mirror one record to the JSONL sink (opened lazily)."""
        if self._sink is None:
            self._sink = self._path.open("a")
        self._sink.write(json.dumps(rec, default=str) + "\n")

    # ------------------------------------------------------------------
    def events(self) -> list[dict]:
        """A copy of the retained records, in sequence order."""
        return list(self.records)

    def for_cid(self, cid: str) -> list[dict]:
        """The retained lifecycle chain of one correlation id.

        Matches records carrying the id directly *and* batch-scoped
        records (``dispatched``) whose ``cids`` list includes it — the
        programmatic form of the one-grep reconstruction.
        """
        return [rec for rec in self.records
                if rec.get("cid") == cid or cid in rec.get("cids", ())]

    def stats(self) -> dict:
        return {
            "emitted": self.emitted,
            "dropped": self.dropped,
            "size": len(self.records),
            "capacity": self.capacity,
        }

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop retained records (counters and the sequence keep going)."""
        self.records.clear()

    def close(self) -> None:
        """Flush and close the JSONL sink, if one is open."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __len__(self) -> int:
        return len(self.records)
