"""Per-service telemetry bundle: histograms + events + flight recorder.

:class:`ServiceTelemetry` is the one object :class:`repro.service.server.
QueryService` holds for its operational signals.  It owns

* the five serving histograms of :data:`HIST_SPECS` as **instance**
  cells (one service's distribution, resettable with the service), each
  mirrored into the process-wide
  :class:`~repro.trace.registry.MetricsRegistry` histogram cell of the
  same name so ``registry_snapshot()`` stays the single cross-subsystem
  snapshot API;
* the bounded :class:`~repro.obs.events.EventLog` and
  :class:`~repro.obs.recorder.FlightRecorder` (every emitted event is
  also recorded for postmortems);
* the correlation-id mint: ``q``/``m``/``d`` prefixes for query,
  mutation, and dynamic-query requests and ``b`` for batch units, each
  numbered by its own monotone counter — ids are deterministic for a
  deterministic arrival order, and never derived from clocks or
  ``id()``.

Telemetry is host-side only: observations are wall-clock durations or
queue/batch sizes, and nothing here ever touches a simulated charge.
"""

from __future__ import annotations

import math

from ..trace.registry import REGISTRY
from .events import EVENTS, EventLog
from .hist import Log2Histogram
from .recorder import FlightRecorder

__all__ = ["HIST_SPECS", "STATS_SCHEMA", "ServiceTelemetry"]

#: The versioned stats-snapshot schema tag (`QueryService.stats()`).
STATS_SCHEMA = "repro.obs/1"

#: The serving histograms.  Ranges are powers of two end to end so the
#: bucket edges are exact floats: latencies span ~1 us .. 64 s, sizes
#: span 1 .. 4096 (one bucket per power of two).
HIST_SPECS = {
    "request_latency_s": dict(lo=2.0 ** -20, hi=2.0 ** 6, unit="s"),
    "batch_size": dict(lo=1.0, hi=2.0 ** 12, unit="requests"),
    "queue_depth": dict(lo=1.0, hi=2.0 ** 12, unit="requests"),
    "cache_lookup_s": dict(lo=2.0 ** -24, hi=2.0 ** 2, unit="s"),
    "worker_turnaround_s": dict(lo=2.0 ** -20, hi=2.0 ** 6, unit="s"),
}

#: Correlation-id prefixes per lifecycle domain.
_CID_DOMAINS = ("q", "m", "d", "b")


class ServiceTelemetry:
    """One service instance's histograms, event log, and recorder."""

    def __init__(self, *, event_capacity: int = 4096,
                 recorder_events: int = 512, recorder_spans: int = 256,
                 events_path=None, registry=REGISTRY):
        self.hists = {
            name: Log2Histogram(name, **spec)
            for name, spec in HIST_SPECS.items()
        }
        self._registry_hists = {
            name: registry.histogram(f"service.hist.{name}", **spec)
            for name, spec in HIST_SPECS.items()
        }
        #: Hot-path pairs: (instance cell, registry mirror) per name, so
        #: :meth:`observe` is two bound-method calls off one lookup.
        self._cells = {
            name: (self.hists[name], self._registry_hists[name])
            for name in HIST_SPECS
        }
        self.events = EventLog(event_capacity, path=events_path)
        self.recorder = FlightRecorder(recorder_events, recorder_spans)
        self._mints = {domain: 0 for domain in _CID_DOMAINS}

    # ------------------------------------------------------------------
    # Correlation ids
    # ------------------------------------------------------------------
    def mint(self, domain: str = "q") -> str:
        """The next correlation id for ``domain`` (``q``/``m``/``d``/``b``)."""
        n = self._mints[domain]
        self._mints[domain] = n + 1
        return f"{domain}-{n:06d}"

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one sample into the instance + registry histograms.

        Both cells declare the identical ``(lo, hi)`` range (they come
        from the same :data:`HIST_SPECS` entry), so the bucket index is
        computed once and applied to both — half the arithmetic of two
        :meth:`~repro.obs.hist.Log2Histogram.observe` calls on the
        per-request hot path.
        """
        inst, mirror = self._cells[name]
        value = float(value)
        if value < inst.lo:
            idx = 0
        elif value >= inst.hi:
            idx = inst.n + 1
        else:
            idx = math.frexp(value / inst.lo)[1]
            if idx < 1:
                idx = 1
            elif idx > inst.n:
                idx = inst.n
        for h in (inst, mirror):
            h.buckets[idx] += 1
            h.count += 1
            h.total += value
            if h.vmin is None or value < h.vmin:
                h.vmin = value
            if h.vmax is None or value > h.vmax:
                h.vmax = value

    def emit(self, event: str, cid: str | None = None, **fields) -> dict:
        """Emit one lifecycle event (also retained by the recorder).

        The vocabulary check, sequence stamping, and both ring appends
        are fully inlined here (one dict per event, shared by the log
        ring, the recorder ring, and the JSONL sink; the logic mirrors
        :meth:`EventLog.append_record <repro.obs.events.EventLog.
        append_record>` + :meth:`FlightRecorder.record_event
        <repro.obs.recorder.FlightRecorder.record_event>` exactly) —
        this runs several times per served request, so its cost bounds
        serving throughput.
        """
        if event not in EVENTS:
            raise ValueError(f"unknown event {event!r}; "
                             f"vocabulary: {sorted(EVENTS)}")
        fields["event"] = event
        fields["cid"] = cid
        log = self.events
        fields["seq"] = log._seq
        log._seq += 1
        log.emitted += 1
        if log.capacity > 0:
            ring = log.records
            if len(ring) >= log.capacity:
                log.dropped += 1  # the deque evicts the oldest itself
            ring.append(fields)
        if log._path is not None:
            log._write_sink(fields)
        rec = self.recorder
        if rec.event_capacity > 0:
            ring = rec._events
            if len(ring) >= rec.event_capacity:
                rec.events_dropped += 1  # the deque evicts the oldest itself
            ring.append(fields)
        return fields

    def record_span(self, span: dict) -> None:
        """Retain a span dict for postmortems (the service keeps its own
        full span ring; the recorder holds only the recent tail)."""
        self.recorder.record_span(span)

    # ------------------------------------------------------------------
    # Snapshots / hygiene
    # ------------------------------------------------------------------
    def histogram_dicts(self) -> dict:
        """Full bucket-array snapshots, keyed by histogram name."""
        return {name: h.to_dict() for name, h in self.hists.items()}

    def snapshot(self) -> dict:
        """The telemetry section of the ``repro.obs/1`` stats surface."""
        return {
            "histograms": self.histogram_dicts(),
            "events": self.events.stats(),
            "recorder": self.recorder.stats(),
        }

    def clear(self) -> None:
        """Clear instance buffers and histograms (registry cells stay —
        they aggregate across service instances by design)."""
        for h in self.hists.values():
            h.clear()
        self.events.clear()
        self.recorder.clear()

    def close(self) -> None:
        self.events.close()
