"""The complete kinetic hull history of a moving swarm.

Theorem 4.5 answers "when is one point a hull vertex?"; running all n
instances simultaneously yields the full history of the convex hull's
vertex set over time.  This example prints that history as interval bars —
one row per robot — and cross-checks a few instants against a direct hull
computation.

Run:  python examples/kinetic_hull_history.py
"""

import math

import numpy as np

from repro import all_hull_membership_intervals, mesh_machine, random_system
from repro.baselines.brute import hull_vertices_at
from repro.kinetics import render_intervals


def main() -> None:
    swarm = random_system(n=7, d=2, k=1, seed=33, scale=5.0)
    machine = mesh_machine(1024)
    history = all_hull_membership_intervals(machine, swarm)

    t_max = 25.0
    print(f"hull membership of {len(swarm)} robots over t in [0, {t_max:.0f}]"
          f"  (# = on the hull):\n")
    for q, intervals in enumerate(history):
        bar = render_intervals(intervals, width=64, t_min=0.0,
                               t_max=t_max) \
            if intervals else "|" + "." * 64 + "|"
        print(f"  P{q}: {bar.splitlines()[0]}")
    print(f"\n  (simulated parallel time for all {len(swarm)} simultaneous "
          f"instances: {machine.metrics.time:.0f} rounds — the cost of the "
          f"slowest single instance)")

    # Cross-check: the membership rows at time t = the hull at time t.
    for t in (1.0, 8.0, 20.0):
        members = sorted(
            q for q, ivs in enumerate(history)
            if any(lo - 1e-9 <= t <= hi + 1e-9 for lo, hi in ivs)
        )
        direct = hull_vertices_at(swarm, t)
        status = "ok" if members == direct else "MISMATCH"
        print(f"  t = {t:5.1f}: hull = {members}  (direct: {direct}) "
              f"[{status}]")
        assert members == direct

    eventually = [q for q, ivs in enumerate(history)
                  if ivs and math.isinf(ivs[-1][1])]
    print(f"\n  robots on the hull forever after: {eventually}")


if __name__ == "__main__":
    main()
