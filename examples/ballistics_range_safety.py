"""Range safety for ballistic projectiles (k = 2 motion).

Several projectiles are launched simultaneously.  The range-safety officer
asks:

* do any two projectiles pass dangerously close, and when (the closest-pair
  *sequence* of the Section 6 remark)?
* when does the whole salvo fit inside the instrumented observation box
  (Theorem 4.6)?
* which projectile is farthest from the launch observer over time
  (Theorem 4.1 upper envelope)?

Run:  python examples/ballistics_range_safety.py
"""

import math

import numpy as np

from repro import (
    closest_pair_sequence,
    containment_intervals,
    farthest_point_sequence,
    hypercube_machine,
)
from repro.kinetics import projectile_system


def main() -> None:
    salvo = projectile_system(6, seed=3)
    machine = hypercube_machine(64)

    print(f"salvo of {len(salvo)} projectiles, motion degree k = {salvo.k}")

    seq = closest_pair_sequence(machine, salvo)
    print("\nclosest pair over time (danger windows):")
    danger = 0
    for piece in seq:
        sep = math.sqrt(max(0.0, piece(piece.midpoint())))
        hi = f"{piece.hi:6.2f}" if np.isfinite(piece.hi) else "   inf"
        flag = "  << near miss" if sep < 10.0 else ""
        danger += bool(flag)
        i, j = piece.label
        print(f"  [{piece.lo:6.2f}, {hi}] P{i}-P{j}: "
              f"min separation scale ~{sep:7.1f}{flag}")

    box = [250.0, 120.0]
    windows = containment_intervals(None, salvo, box)
    print(f"\nsalvo inside the {box[0]:.0f} x {box[1]:.0f} observation box:")
    for lo, hi in windows:
        hi_s = "inf" if math.isinf(hi) else f"{hi:.2f}"
        print(f"  [{lo:.2f}, {hi_s}]")

    far = farthest_point_sequence(None, salvo, query=0)
    print("\nfarthest projectile from P0's launch rail, over time:")
    for piece in far:
        hi = f"{piece.hi:6.2f}" if np.isfinite(piece.hi) else "   inf"
        print(f"  [{piece.lo:6.2f}, {hi}] -> P{piece.label}")

    print(f"\nhypercube simulated time: {machine.metrics.time:.0f} rounds")


if __name__ == "__main__":
    main()
