"""A tour of the Davenport–Schinzel machinery behind the paper.

The maximum piece count of a lower envelope is a purely combinatorial
quantity, lambda(n, s).  This example shows the three faces of that fact:

1. the *sequence* side — extremal DS sequences attaining lambda(n, s);
2. the *geometric* side — families of curves whose envelopes realise it;
3. the *asymptotic* side — why "essentially Theta(n)" is safe for any
   machine-representable n (the inverse Ackermann function).

Run:  python examples/davenport_schinzel_tour.py
"""

from repro import (
    PolynomialFamily,
    envelope_serial,
    inverse_ackermann,
    is_ds_sequence,
    lambda_bound,
    lambda_exact,
)
from repro.kinetics import extremal_sequence
from repro.report.figures import tangent_lines


def main() -> None:
    print("1. Extremal DS sequences (Definition 2.1 / Theorem 2.3)")
    for n, s in [(5, 1), (5, 2), (8, 2)]:
        seq = extremal_sequence(n, s)
        assert is_ds_sequence(seq, s)
        print(f"   lambda({n},{s}) = {lambda_exact(n, s):3d}  attained by  "
              + " ".join(map(str, seq)))

    print("\n2. Geometric realisation: tangents to a parabola (s = 1)")
    for n in (4, 8, 16):
        fns = tangent_lines(n)
        env = envelope_serial(fns, PolynomialFamily(1))
        labels = " ".join(str(p.label) for p in env)
        print(f"   n = {n:2d}: envelope has {len(env):2d} pieces "
              f"(= lambda({n},1)); visit order: {labels}")
        assert len(env) == n

    print("\n3. The near-linearity of lambda for s >= 3 (Theorem 2.3)")
    print("   n          alpha(n)  machine-sizing bound for s = 3")
    for n in (10, 10**3, 10**6, 10**9, 10**12):
        print(f"   {n:<16,d}{inverse_ackermann(n):<10d}"
              f"{lambda_bound(n, 3):,d}")
    print("\n   alpha grows so slowly that lambda(n, s)/n stays a small "
          "constant\n   for every n that fits in a computer — the reason "
          "the paper treats\n   lambda as 'essentially Theta(n)' when "
          "sizing machines.")


if __name__ == "__main__":
    main()
