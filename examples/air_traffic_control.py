"""Air traffic control: collision prediction for a monitored aircraft.

The paper motivates dynamic computational geometry with air traffic
control.  This example models a corridor of aircraft on known linear
flight plans and, for a monitored aircraft,

* predicts every future collision instant (Theorem 4.2),
* tracks which aircraft is nearest over time (Theorem 4.1), and
* reports the aircraft that stays nearest in steady state — the one the
  controller ultimately has to separate (Proposition 5.2).

Run:  python examples/air_traffic_control.py
"""

import numpy as np

from repro import (
    Motion,
    PointSystem,
    closest_point_sequence,
    collision_times,
    collision_times_with,
    hypercube_machine,
    steady_nearest_neighbor,
)


def build_corridor(n_lanes: int = 6) -> PointSystem:
    """Aircraft 0 flies east; crossing traffic cuts its path on schedule."""
    motions = [Motion.linear([0.0, 0.0], [8.0, 0.0])]  # monitored aircraft
    rng = np.random.default_rng(42)
    for lane in range(1, n_lanes + 1):
        t_cross = 2.0 * lane
        x_cross = 8.0 * t_cross
        if lane % 2:
            # Southbound crossers timed to intersect the monitored track.
            y0 = 40.0 + 10 * lane
            motions.append(
                Motion.linear([x_cross, y0], [0.0, -y0 / t_cross])
            )
        else:
            # Parallel traffic offset to the south: never conflicts.
            motions.append(
                Motion.linear([-20.0 * lane, -30.0 - 5 * lane], [8.0, 0.0])
            )
    return PointSystem(motions)


def main() -> None:
    system = build_corridor()
    machine = hypercube_machine(16)

    times = collision_times(machine, system, query=0)
    print("predicted conflicts for aircraft 0:")
    for t, j in collision_times_with(system, query=0):
        print(f"  t = {t:6.2f}: collision with aircraft {j}")
    assert len(times) == len(collision_times_with(system, query=0))
    print(f"(hypercube time for the sorted conflict list: "
          f"{machine.metrics.time:.0f} simulated rounds)")

    machine.reset()
    seq = closest_point_sequence(machine, system, query=0)
    print("\nnearest aircraft over time:")
    for piece in seq:
        hi = f"{piece.hi:7.2f}" if np.isfinite(piece.hi) else "    inf"
        print(f"  [{piece.lo:7.2f}, {hi}] closest: aircraft {piece.label}"
              f" (separation^2 at window start: {piece(piece.lo):,.0f})")

    nn = steady_nearest_neighbor(None, system, query=0)
    print(f"\nsteady-state nearest neighbour: aircraft {nn} "
          f"(matches the last window above: "
          f"{'yes' if nn == seq.labels()[-1] else 'NO'})")
    assert nn == seq.labels()[-1]


if __name__ == "__main__":
    main()
