"""Machine cost explorer: one workload, every architecture.

Runs the same Theorem 4.1 computation (closest-point sequence of a moving
system) on all six machine models the library provides and prints the cost
breakdown — the quickest way to *see* the complexity classes of Tables 1–3
and the Section 1 remark about other networks.

Run:  python examples/machine_cost_explorer.py
"""

from repro import closest_point_sequence, random_system, render_table
from repro.machines import (
    ccc_machine,
    hypercube_machine,
    mesh_machine,
    pram_machine,
    serial_machine,
    shuffle_exchange_machine,
)

MACHINES = [
    ("mesh 32x32", lambda: mesh_machine(1024)),
    ("mesh 32x32 (row-major cost model)",
     lambda: mesh_machine(1024, scheme="row-major")),
    ("hypercube 2^10", lambda: hypercube_machine(1024)),
    ("cube-connected cycles", lambda: ccc_machine(1024)),
    ("shuffle-exchange", lambda: shuffle_exchange_machine(1024)),
    ("CREW PRAM", lambda: pram_machine(1024)),
    ("serial (1 PE)", serial_machine),
]


def main() -> None:
    system = random_system(n=128, d=2, k=1, seed=21)
    print(f"workload: closest-point sequence of {len(system)} moving points "
          f"(Theorem 4.1)\n")
    rows = []
    reference = None
    for name, make in MACHINES:
        machine = make()
        seq = closest_point_sequence(machine, system)
        if reference is None:
            reference = seq.labels()
        else:
            assert seq.labels() == reference, "all machines must agree"
        met = machine.metrics
        top_phase = max(met.phases, key=met.phases.get) if met.phases else "-"
        rows.append([
            name,
            f"{met.time:.0f}",
            f"{met.comm_time:.0f}",
            f"{met.rounds}",
            top_phase,
        ])
    render_table(
        "Same computation, same answer — different architectures",
        ["machine", "time", "comm time", "rounds", "dominant phase"],
        rows,
    )
    print("\nEvery machine computed the identical sequence; only the cost "
          "differs.\nThe serial row is total *work*; the parallel rows are "
          "lockstep *time*.")


if __name__ == "__main__":
    main()
