"""Quickstart: the lower envelope and the closest-point sequence.

Builds a small system of moving points, constructs the minimum function
h(t) = min_j d^2(P_0, P_j) of Theorem 4.1 on a simulated mesh and a
simulated hypercube, and prints the chronological sequence R of closest
points together with the simulated parallel time each machine spent.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    PolynomialFamily,
    closest_point_sequence,
    envelope_serial,
    hypercube_machine,
    mesh_machine,
    random_system,
)
from repro.kinetics import render_timeline


def main() -> None:
    # 16 points in the plane with linear motion (1-motion).
    system = random_system(n=16, d=2, k=1, seed=7)
    print(f"system: n={len(system)} points, d={system.dimension}, k={system.k}")

    # --- Theorem 4.1 on the mesh -------------------------------------
    mesh = mesh_machine(64)
    seq = closest_point_sequence(mesh, system)
    print(f"\nclosest-point sequence R (point index per time interval):")
    for piece in seq:
        hi = f"{piece.hi:8.3f}" if np.isfinite(piece.hi) else "     inf"
        print(f"  [{piece.lo:8.3f}, {hi}] -> P_{piece.label}")
    print(f"mesh of {mesh.n_pe} PEs: simulated parallel time "
          f"{mesh.metrics.time:.0f} (comm {mesh.metrics.comm_time:.0f})")

    print("\ntimeline (who is closest when):")
    print(render_timeline(seq, width=64, t_max=30.0))

    # --- the same computation on a hypercube -------------------------
    cube = hypercube_machine(64)
    seq_cube = closest_point_sequence(cube, system)
    assert seq_cube.labels() == seq.labels(), "machines must agree"
    print(f"hypercube of {cube.n_pe} PEs: simulated parallel time "
          f"{cube.metrics.time:.0f} — "
          f"{mesh.metrics.time / cube.metrics.time:.1f}x faster than the mesh")

    # --- sanity: the envelope really is the minimum ------------------
    fns, labels = [], []
    for j in range(1, len(system)):
        fns.append(system[0].distance_squared(system[j]))
        labels.append(j)
    oracle = envelope_serial(fns, PolynomialFamily(2), labels=labels)
    assert oracle.labels() == seq.labels()
    ts = np.linspace(0.01, 30, 200)
    worst = max(
        abs(seq(t) - min(f(t) for f in fns)) for t in ts
    )
    print(f"max deviation from the pointwise minimum over 200 samples: "
          f"{worst:.2e}")


if __name__ == "__main__":
    main()
