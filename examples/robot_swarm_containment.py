"""Robot swarm containment: when does the team fit through the door?

A swarm of robots converges on a rally point.  Using the containment
algorithms of Section 4.3 we answer:

* during which time windows does the swarm fit inside a fixed staging box
  (Theorem 4.6)?
* how does the edge of the smallest enclosing square evolve
  (Theorem 4.7), and when is the swarm most compact (Corollary 4.8)?
* when is the scout robot on the swarm's convex hull, i.e. exposed on the
  perimeter (Theorem 4.5)?

Run:  python examples/robot_swarm_containment.py
"""

import math

from repro import (
    containment_intervals,
    converging_swarm,
    enclosing_cube_edge_function,
    hull_membership_intervals,
    mesh_machine,
    smallest_enclosing_cube_ever,
)


def fmt_iv(lo: float, hi: float) -> str:
    hi_s = "inf" if math.isinf(hi) else f"{hi:.2f}"
    return f"[{lo:.2f}, {hi_s}]"


def main() -> None:
    swarm = converging_swarm(n=12, d=2, seed=11)
    machine = mesh_machine(256)

    box = [30.0, 30.0]
    windows = containment_intervals(machine, swarm, box)
    print(f"time windows when all {len(swarm)} robots fit in a "
          f"{box[0]:.0f}x{box[1]:.0f} staging box:")
    for lo, hi in windows:
        print(f"  {fmt_iv(lo, hi)}")

    D = enclosing_cube_edge_function(None, swarm)
    d_min, t_min = smallest_enclosing_cube_ever(machine, swarm)
    print(f"\nsmallest enclosing square over all time: edge {d_min:.2f} "
          f"at t = {t_min:.2f}")
    print(f"  (edge at t=0: {D(0.0):.2f}; the swarm contracts by "
          f"{D(0.0) / d_min:.1f}x before dispersing)")

    exposure = hull_membership_intervals(None, swarm, query=0)
    print("\nscout (robot 0) exposed on the swarm perimeter during:")
    for lo, hi in exposure:
        print(f"  {fmt_iv(lo, hi)}")
    if not exposure:
        print("  never — the scout stays interior")

    print(f"\nmesh of {machine.n_pe} PEs: total simulated parallel time "
          f"{machine.metrics.time:.0f} rounds "
          f"({machine.metrics.comm_time:.0f} communication)")


if __name__ == "__main__":
    main()
