"""Steady-state survey: the long-run geometry of a dispersing system.

Section 5 of the paper shows that as t -> inf, every geometric property of
a k-motion system is decided by Theta(1) leading-coefficient comparisons
(Lemma 5.1), reducing steady-state questions to *static* geometry.  This
example runs the whole Section 5 suite on a divergent system and checks the
answers against a numeric snapshot taken far in the future.

Run:  python examples/steady_state_survey.py
"""

import numpy as np

from repro import (
    divergent_system,
    hypercube_machine,
    mesh_machine,
    steady_closest_pair,
    steady_diameter_squared,
    steady_enclosing_rectangle,
    steady_farthest_pair,
    steady_hull,
    steady_nearest_neighbor,
    steady_rectangle_snapshot,
)


def main() -> None:
    system = divergent_system(n=12, d=2, seed=5)
    mesh = mesh_machine(16)
    cube = hypercube_machine(16)

    nn = steady_nearest_neighbor(mesh, system)
    cp = steady_closest_pair(mesh, system)
    hull = steady_hull(mesh, system)
    fp = steady_farthest_pair(mesh, system)
    d2 = steady_diameter_squared(None, system)
    rect_hull, sup = steady_enclosing_rectangle(mesh, system)

    print(f"steady-state survey of {len(system)} diverging robots:")
    print(f"  nearest neighbour of P_0 ........ P_{nn}")
    print(f"  closest pair .................... P_{cp[0]} / P_{cp[1]}")
    print(f"  hull vertices (ccw) ............. {hull}")
    print(f"  farthest pair (diameter) ........ P_{fp[0]} / P_{fp[1]}")
    print(f"  diameter^2 leading coefficient .. {d2.leading:.2f} "
          f"(degree {d2.degree})")
    print(f"  min-area rectangle edge ......... hull edge #{sup.edge}, "
          f"supports {sup.far}/{sup.left}/{sup.right}")
    print(f"  mesh simulated time ............. {mesh.metrics.time:.0f}")

    # Cross-check on the hypercube: identical combinatorial answers.
    assert steady_nearest_neighbor(cube, system) == nn
    assert sorted(steady_hull(cube, system)) == sorted(hull)
    print(f"  hypercube agrees ................ yes "
          f"({cube.metrics.time:.0f} simulated rounds)")

    # Validate against a numeric far-future snapshot.
    t = system.horizon() * 50
    pos = system.positions(t)
    d = np.linalg.norm(pos - pos[0], axis=1)
    d[0] = np.inf
    assert nn == int(np.argmin(d)), "steady NN must match the far future"
    corners = steady_rectangle_snapshot(system, rect_hull, sup, t)
    print(f"\nat t = {t:.0f} the enclosing rectangle has corners:")
    for c in corners:
        print(f"  ({c[0]:12.1f}, {c[1]:12.1f})")


if __name__ == "__main__":
    main()
